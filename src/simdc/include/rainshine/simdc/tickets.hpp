// RMA ticket stream: the simulator's observable output and the analyses'
// sole failure-data input (mirroring §IV "Failure Tickets").
//
// A ticket records what the paper's RMA system records: which device failed
// (rack / server slot / component slot), the fault description (Table II
// taxonomy), when it opened, when the repair resolved it, whether the
// investigating engineer confirmed a real fault (true positive), and —
// purely for ground-truth bookkeeping, never consumed by the analyses — the
// burst event it belonged to, if any.
//
// Two ways to run the generative model over a study window:
//
//   * simulate()          — materializes the whole window as a TicketLog.
//     O(total tickets) memory; right for the paper-scale fleet and for the
//     analyses that want random access.
//   * simulate_streamed() — pushes finalized tickets through a TicketSink in
//     log order, one simulated day at a time, holding only O(one day) of
//     tickets resident. This is the engine (simulate() is a collect-into-log
//     wrapper over it), and the only path that scales to million-server
//     fleets. It runs on the columnar FleetTable hot path (fleet_table.hpp)
//     instead of per-rack pointer chasing, and the two are pinned
//     byte-identical by tests/simdc/test_simulate_sink.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rainshine/simdc/hazard.hpp"

namespace rainshine::simdc {

/// Field order packs the record tightly: the two 8-byte hours lead, then the
/// 4-byte ids, then the 2-byte slots, then the byte-wide tag fields — widest
/// first, so no interior padding (only 2 tail bytes from the 8-byte
/// alignment). The size is load-bearing for fleet-scale runs: a streamed
/// chunk of N tickets costs exactly 32 N bytes, so a million-server day
/// (~10 k tickets) stays around a third of a megabyte resident.
struct Ticket {
  util::HourIndex open_hour = 0;
  util::HourIndex close_hour = 0;  ///< exclusive; device unavailable in [open, close)
  std::int32_t rack_id = 0;
  std::int32_t burst_id = -1;  ///< ground-truth correlated-event id; -1 = independent
  std::int16_t server_index = 0;     ///< slot within the rack
  std::int16_t component_index = -1; ///< disk/DIMM slot within the server; -1 for server-level faults
  FaultType fault = FaultType::kOther;
  bool true_positive = true;   ///< engineer confirmed a real fault

  [[nodiscard]] util::DayIndex open_day() const noexcept {
    return util::Calendar::day_of(open_hour);
  }
  [[nodiscard]] double repair_hours() const noexcept {
    return static_cast<double>(close_hour - open_hour);
  }
};

static_assert(sizeof(Ticket) == 32 && alignof(Ticket) == 8,
              "Ticket is the unit of streamed chunk memory; growing it "
              "changes every fleet-scale memory ceiling, so do it knowingly");

/// The full stream for one simulated study window, sorted by open_hour.
class TicketLog {
 public:
  TicketLog() = default;
  explicit TicketLog(std::vector<Ticket> tickets);

  [[nodiscard]] std::span<const Ticket> tickets() const noexcept { return tickets_; }
  [[nodiscard]] std::size_t size() const noexcept { return tickets_.size(); }

  /// True-positive tickets only — what every analysis starts from (§IV).
  [[nodiscard]] std::vector<const Ticket*> true_positives() const;
  /// True-positive HARDWARE tickets — the decision studies' working set.
  [[nodiscard]] std::vector<const Ticket*> hardware_true_positives() const;

  /// Ticket count per fault type over true positives (Table II numerator).
  [[nodiscard]] std::array<std::size_t, kNumFaultTypes> count_by_fault(
      DataCenterId dc, const Fleet& fleet) const;

 private:
  std::vector<Ticket> tickets_;
};

/// A correlated scenario event injected on top of the organic generative
/// model: on `day`, a cooling/power event strikes every rack of one rack-row
/// and downs `fraction` of each rack's servers. This is the scenario class
/// the paper's 600-rack fleet could not express meaningfully — a rack-row is
/// a handful of racks there, but a fleet-scale row outage downs thousands of
/// servers at once. Injected tickets carry burst ids from the same
/// chronological counter as organic correlated events; an empty outage list
/// leaves the output byte-identical to the organic model.
struct InjectedOutage {
  DataCenterId dc = DataCenterId::kDC1;
  std::int32_t row = 0;
  util::DayIndex day = 0;
  double fraction = 1.0;  ///< of each affected rack's servers (clamped to (0,1])
  int onset_hour_of_day = 12;
  double repair_median_h = 8.0;  ///< lognormal, with burst_repair_sigma spread
  FaultType fault = FaultType::kPowerFailure;
};

/// Options for the discrete-event sweep.
struct SimulationOptions {
  std::uint64_t seed = 1;  ///< ticket-stream seed (independent of fleet seed)
  /// Racks per generation block dispatched to the thread pool by the
  /// streaming engine. Block boundaries depend only on the fleet (never on
  /// thread count), and output is byte-identical for ANY value; this only
  /// tunes scheduling granularity. 0 picks the default.
  std::size_t racks_per_block = 0;
  /// Scenario events layered on the organic model (see InjectedOutage).
  std::vector<InjectedOutage> outages;
};

/// Consumes the streamed sweep's output chunk by chunk. Chunks arrive in
/// log order (the TicketLog total order: open_hour, then generation order),
/// exactly one call per simulated day — possibly with an empty span.
/// Concatenating every span reproduces simulate()'s TicketLog byte for
/// byte. The spans point into engine-owned buffers that are reused after
/// the call returns: copy what you keep.
class TicketSink {
 public:
  virtual ~TicketSink() = default;
  /// `day` is the simulated day whose completion finalized `tickets`.
  /// Return false to stop the sweep early (remaining days are skipped).
  virtual bool on_day(util::DayIndex day, std::span<const Ticket> tickets) = 0;
};

/// What the streaming engine did; the memory columns are how the soak tests
/// pin the O(one day) residency claim without resorting to RSS heuristics.
struct StreamStats {
  std::size_t total_tickets = 0;   ///< tickets pushed through the sink
  std::int32_t bursts = 0;         ///< correlated events, injected included
  util::DayIndex days_emitted = 0; ///< sink calls made (== window unless stopped)
  /// Peak tickets simultaneously resident inside the engine (generation
  /// buffers + watermark heap + chunk under emission) over the whole run.
  std::size_t peak_resident_tickets = 0;
  /// Largest single chunk handed to the sink.
  std::size_t peak_chunk_tickets = 0;
};

/// Root generator of the ticket process for `seed` — the parent every
/// (rack, day) cell's stream is split from. Exposed so tests can derive
/// exactly the draws the sweep makes.
[[nodiscard]] util::Rng ticket_stream_root(std::uint64_t seed) noexcept;

/// The per-cell slice of the fleet the ticket generator needs: what
/// make_ticket and the correlated-event loops address. Assembled either from
/// a Rack (reference path) or from FleetTable columns (hot path).
struct CellGeom {
  std::int32_t rack_id = 0;
  int servers = 0;
  int disks_per_server = 0;
  int dimms_per_server = 0;
};

/// The per-(rack, day) hazard evaluations the ticket generator consumes.
/// Computing these — not drawing from them — is the hot path's cost, which
/// is why FleetTable precomputes every static factor.
struct CellRates {
  std::array<double, kNumFaultTypes> fault{};  ///< Poisson intensity per type
  double burst = 0.0;      ///< expected correlated burst events
  double burst_lo = 0.0;   ///< burst severity fraction range
  double burst_hi = 0.0;
  double batch = 0.0;      ///< expected disk-batch events
  double batch_lo = 0.0;   ///< batch severity fraction range
  double batch_hi = 0.0;
};

/// Simulates one (rack, day) cell given its rates: the single generation
/// code path shared by the reference wrapper (simulate_rack_day) and the
/// columnar engine, so the two cannot drift in their draw structure.
/// Appends tickets to `out` in generation order; correlated events are
/// tagged `first_burst_id`, `first_burst_id + 1`, ... in discovery order and
/// the count of events opened is returned.
std::int32_t simulate_cell(const HazardConfig& cfg, const CellGeom& geom,
                           const CellRates& rates, util::Rng& day_rng,
                           util::DayIndex day, std::int32_t first_burst_id,
                           std::vector<Ticket>& out);

/// Simulates one (rack, day) cell of the generative model, appending its
/// tickets to `out` in generation order — the AoS reference path (rates
/// evaluated through HazardModel per call). The cell draws only from the
/// (root, rack.id, day) split — splitting never advances the parent — so ANY
/// iteration order over cells reproduces identical tickets.
std::int32_t simulate_rack_day(const HazardModel& hazard, const util::Rng& root,
                               const Rack& rack, util::DayIndex day,
                               std::int32_t first_burst_id,
                               std::vector<Ticket>& out);

/// Runs the generative model over the whole window, pushing each simulated
/// day's finalized tickets through `sink` in log order (see TicketSink).
/// Memory stays O(one day of tickets) regardless of fleet size or window
/// length — this is the path that sweeps million-server fleets.
///
/// Engine shape: days advance serially; within a day, racks are partitioned
/// into fixed blocks generated concurrently on the shared pool into reused
/// per-block buffers (each (rack, day) cell draws from its own
/// (seed, rack_id, day)-derived stream, so the schedule cannot perturb the
/// draws). Completed cells merge in rack order into a watermark min-heap
/// keyed by the log total order (open_hour, rack, day, seq); everything
/// opening before the next day's first hour is final and drains to the
/// sink. Burst ids are handed out chronologically in (day, rack, discovery)
/// order from a running counter. Deterministic and byte-identical to
/// simulate() at any thread count.
StreamStats simulate_streamed(const Fleet& fleet, const HazardModel& hazard,
                              TicketSink& sink, SimulationOptions options = {});

/// Runs the generative model over the whole window and materializes the
/// TicketLog: a collect-into-log wrapper over simulate_streamed (same
/// engine, same output, O(total tickets) memory). Deterministic for fixed
/// (fleet, environment, hazard, options) at any thread count. `env` is
/// consulted through the hazard model (which carries its environment);
/// the parameter is kept for call-site symmetry.
[[nodiscard]] TicketLog simulate(const Fleet& fleet, const EnvironmentModel& env,
                                 const HazardModel& hazard,
                                 SimulationOptions options = {});

}  // namespace rainshine::simdc
