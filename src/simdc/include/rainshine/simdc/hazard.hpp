// Ground-truth multi-factor hazard model.
//
// This is the heart of the substitution for the paper's proprietary data:
// a generative failure model in which the factors of Table III act on RMA
// rates EXACTLY the way the paper's analysis discovers them acting —
// multiplicatively, with one planted interaction:
//
//   rate(rack, day, fault) = base(fault)
//                          * devices(rack, fault)
//                          * sku_effect(sku, fault)        (Q2's decision var)
//                          * workload_stress(workload)     (confounds SKUs)
//                          * dc_effect(dc)
//                          * power_density(rated_kw)       (Fig. 8)
//                          * bathtub(age_months)           (Fig. 9)
//                          * weekday(day)                  (Fig. 3)
//                          * seasonality(month)            (Fig. 4)
//                          * environment(T, RH, dc, fault) (Figs. 5, 16-18)
//
// The environment term carries the paper's key Q3 finding as ground truth:
// in DC1 (adiabatic), disk hazard jumps +50% above 78F and a further +25%
// when RH is simultaneously below 25%; DC2 (chilled water) is insensitive.
// Because the model is known, tests can verify the CART/partial-dependence
// pipeline *recovers* each planted effect, which is the paper's core claim.
//
// Rack-level correlated "burst" events (a failed power strip or PDU taking
// down a swath of servers at once) are modelled separately; they dominate
// the high quantiles of the concurrent-failure metric µ and hence the
// spare-provisioning story (Q1), where rack groups with different burst
// propensities need very different spare pools.
#pragma once

#include <array>

#include "rainshine/simdc/environment.hpp"
#include "rainshine/simdc/topology.hpp"
#include "rainshine/stats/distributions.hpp"

namespace rainshine::simdc {

/// All tunables of the generative model, defaulted to values calibrated so
/// the aggregate outputs land near the paper's published marginals
/// (Table II mix; Figs. 2-9 shapes). Exposed so tests can plant custom
/// structure and ablation benches can switch effects off.
struct HazardConfig {
  // -- Base rates (expected tickets per DEVICE per day at multiplier 1) -----
  // "Device" is a disk for disk faults, a DIMM for memory faults and a
  // server for everything else.
  double disk_base = 1.2e-4;
  double dimm_base = 2.0e-5;
  double power_base = 0.9e-4;
  double server_base = 1.4e-4;
  double network_base = 1.2e-4;
  double timeout_base = 3.9e-3;
  double deploy_base = 1.35e-3;
  double crash_base = 2.8e-4;
  double pxe_base = 1.15e-3;
  double reboot_base = 7.0e-5;
  double other_base = 9.5e-4;

  // -- SKU effects (Q2 ground truth) ----------------------------------------
  // Hardware-fault multiplier per SKU: the *true* vendor-quality signal.
  // S2 is genuinely 4x worse than S4 (2.0 vs 0.5) — the MF answer in
  // Fig. 15. The SF view sees ~10x because S2 exclusively hosts the
  // high-stress W2 workload in dense high-power racks.
  std::array<double, kNumSkus> sku_hw = {1.2, 2.0, 1.4, 0.5, 1.0, 0.9, 0.7};
  // Disk faults additionally scale per SKU (drive model differences; S2's
  // dense chassis runs its few drives hot and hard).
  std::array<double, kNumSkus> sku_disk = {1.1, 1.6, 1.3, 0.8, 1.0, 0.9, 0.8};

  // -- Workload stress (Fig. 6 ground truth) ---------------------------------
  // Hardware stress: W2 (heavy compute) highest; W3 (HPC) lowest;
  // storage-data (W5, W6) below storage-compute (W4, W7).
  std::array<double, kNumWorkloads> workload_hw = {1.0, 2.6, 0.6, 1.3,
                                                   0.9, 0.8, 1.4};
  // Software-fault intensity tracks demand volatility, not hardware stress.
  std::array<double, kNumWorkloads> workload_sw = {1.2, 1.5, 0.7, 1.0,
                                                   0.9, 0.9, 1.1};

  // -- Spatial effects (Fig. 2) ----------------------------------------------
  /// Hardware multiplier per DC; DC1's container/3-nines design runs hotter
  /// and fails more (paper: "regions of DC1 show higher failure rate").
  std::array<double, kNumDataCenters> dc_hw = {1.25, 1.0};
  /// Additional memory-fault multiplier per DC. DC1 sits at altitude with a
  /// dusty dry-side climate, a combination field studies (Sridharan et al.)
  /// tie to elevated DRAM fault rates; Table II shows a ~3x DC1/DC2 memory
  /// gap that the generic hardware multiplier alone cannot produce.
  std::array<double, kNumDataCenters> dc_mem = {1.3, 0.5};
  /// Magnitude of deterministic per-region texture (+-) within a DC.
  double region_spread = 0.15;

  // -- Power density (Fig. 8) -------------------------------------------------
  /// Extra hazard per kW above this knee; racks >12 kW report higher rates.
  double power_knee_kw = 9.0;
  double power_slope_per_kw = 0.07;

  // -- Age (Fig. 9) ------------------------------------------------------------
  /// Bathtub hazard; normalized by its value at `bathtub_norm_age_months` so
  /// mid-life equipment has multiplier ~1.
  stats::BathtubHazard bathtub{/*infant_scale=*/5.0, /*infant_shape=*/0.45,
                               /*infant_weight=*/3.8, /*floor_rate=*/1.0,
                               /*wearout_scale=*/90.0, /*wearout_shape=*/5.0,
                               /*wearout_weight=*/0.8};
  double bathtub_norm_age_months = 30.0;
  /// Ages are clamped here before evaluating the bathtub: the Weibull infant
  /// component (shape < 1) has a t->0 singularity, and physically a rack's
  /// burn-in risk is bounded — treat brand-new gear as half-a-month old.
  double min_age_months = 0.5;

  // -- Time effects (Figs. 3-4) -------------------------------------------------
  double weekday_hw = 1.18;   ///< weekday / weekend hardware ratio driver
  double weekday_sw = 1.45;   ///< stronger demand coupling for software
  /// Direct month-of-year multipliers (Jan..Dec); H2 elevated per Fig. 4.
  std::array<double, 12> month_mult = {0.95, 0.95, 0.97, 1.0,  1.0,  1.05,
                                       1.12, 1.2,  1.25, 1.2,  1.15, 1.05};

  // -- Environment (Q3 ground truth; Figs. 5, 16-18) ---------------------------
  /// Smooth disk-hazard slope per F above the reference temperature.
  double disk_temp_slope_per_f = 0.006;
  double temp_reference_f = 70.0;
  /// The planted interaction: above `hot_threshold_f`, disk hazard x1.5;
  /// if RH also below `dry_threshold_rh`, a further x1.25.
  double hot_threshold_f = 78.0;
  double hot_mult = 1.5;
  double dry_threshold_rh = 25.0;
  double hot_dry_extra_mult = 1.25;
  /// Which DCs the environment term applies to (DC2's tight HVAC envelope
  /// both narrows exposure and — per Fig. 18 — shows no sensitivity).
  std::array<bool, kNumDataCenters> env_sensitive = {true, false};
  /// Standalone low-RH (electrostatic-discharge) hardware bump,
  /// env-sensitive DCs only. ESD stresses exposed electronics — memory,
  /// power components, NICs — but NOT disks, whose enclosures shield them;
  /// disks instead carry the hot x dry interaction above.
  double low_rh_threshold = 30.0;
  double low_rh_mult = 1.25;
  double very_low_rh_threshold = 20.0;
  double very_low_rh_mult = 1.55;

  // -- Correlated bursts (Q1's µ tail) ------------------------------------------
  double burst_base_per_rack_day = 4.5e-4;
  /// Bursts scale with power density and infant age. Per-DC propensities
  /// follow Table II's power-failure mix (DC2 reports more power tickets
  /// than DC1 despite its 5-nines design — its colocation hall shares PDUs
  /// across more tenants).
  std::array<double, kNumDataCenters> dc_burst = {0.8, 1.5};
  double burst_infant_age_months = 6.0;
  double burst_infant_mult = 2.5;
  /// Burst INCIDENCE rises steeply with power density (overloaded branch
  /// circuits trip under load spikes) — much steeper than the ordinary
  /// hazard's power term.
  double burst_power_slope_per_kw = 0.45;
  /// Fraction of the rack's servers a burst downs. The SEVERITY is a
  /// property of the rack's hardware design — how many chassis share a
  /// power strip / PDU branch — so it is factor-determined (per-SKU base
  /// plus a power-density term) with only small per-event noise. This is
  /// what makes the µ tail PREDICTABLE from observable factors, which Q1's
  /// MF clustering exploits: racks of the same design need the same spare
  /// pool, and clusters differ widely (Fig. 11's 2-85% spread).
  std::array<double, kNumSkus> burst_fraction_base = {0.35, 0.03, 0.78, 0.04,
                                                      0.12, 0.18, 0.04};
  double burst_fraction_knee_kw = 11.5;  ///< severity grows above this rating
  double burst_fraction_per_kw = 0.04;   ///< added per kW above the knee
  double burst_fraction_noise = 0.06;    ///< uniform +- per event
  double burst_fraction_min = 0.03;
  double burst_fraction_max = 0.92;
  /// Correlated events CASCADE rather than strike instantaneously: as
  /// breakers trip, load re-balances onto the remaining servers and tips
  /// them over one by one, so onsets spread over several hours. This is
  /// what temporal multiplexing (Fig. 12) exploits — within an hour only
  /// part of the cascade is down at once, while a whole day sees every
  /// affected server.
  double burst_onset_spread_hours = 16.0;

  // -- Disk-batch (bad-vintage) events ------------------------------------------
  // Drives from one procurement batch share firmware and wear profiles, and
  // a batch defect surfaces as a spate of disk failures across the rack —
  // one drive on many servers within hours (the rack was populated from one
  // pallet, slot-by-slot). Under SERVER-level sparing each such disk pins a
  // whole server, so bad-vintage racks need huge server spare pools; under
  // COMPONENT-level sparing the same event costs a handful of cheap drives.
  // This is the ground truth behind Fig. 13's 40% compute-workload saving
  // and a driver of Fig. 11's age-cohort clusters.
  double disk_batch_base_per_rack_day = 1.2e-4;
  double disk_batch_bad_vintage_mult = 6.0;
  /// DC1's procurement pipeline (container blocks populated in one shot from
  /// single pallets) concentrates batch exposure; DC2's colocation grows
  /// incrementally from mixed stock.
  std::array<double, kNumDataCenters> dc_disk_batch = {1.25, 0.7};
  /// Share of (SKU, commission-year) cohorts that got a bad batch.
  double disk_batch_bad_vintage_probability = 0.30;
  /// Fraction of the rack's SERVERS that lose one drive, per SKU class.
  double disk_batch_fraction_compute = 0.38;
  double disk_batch_fraction_mixed = 0.30;
  double disk_batch_fraction_storage = 0.25;
  double disk_batch_fraction_hpc = 0.20;
  double disk_batch_fraction_noise = 0.05;
  double disk_batch_repair_median_h = 6.0;  ///< a drive swap is quick
  double disk_batch_repair_sigma = 0.4;

  // -- Ticket hygiene -------------------------------------------------------------
  /// Fraction of generated tickets that are false positives (no fault found);
  /// the analyses must filter them out, as §IV says the operators do.
  double false_positive_rate = 0.08;

  // -- Repair durations (hours; lognormal) ------------------------------------------
  double hw_repair_median_h = 10.0;
  double hw_repair_sigma = 0.7;
  double sw_repair_median_h = 3.0;
  double sw_repair_sigma = 0.6;
  double burst_repair_median_h = 8.0;
  double burst_repair_sigma = 0.4;
};

/// Evaluates the ground-truth rates. Stateless aside from the wired-in
/// fleet/environment; cheap to copy.
class HazardModel {
 public:
  HazardModel(const Fleet& fleet, const EnvironmentModel& env,
              HazardConfig config = {});

  [[nodiscard]] const HazardConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Fleet& fleet() const noexcept { return *fleet_; }
  [[nodiscard]] const EnvironmentModel& environment() const noexcept { return *env_; }

  /// Expected number of `fault` tickets for `rack` during `day` (excluding
  /// bursts). This is the Poisson intensity the simulator draws from.
  [[nodiscard]] double rack_day_rate(const Rack& rack, util::DayIndex day,
                                     FaultType fault) const;

  /// Expected number of burst events for `rack` during `day`.
  [[nodiscard]] double burst_rate(const Rack& rack, util::DayIndex day) const;

  /// Fraction range [lo, hi] of servers a burst downs for `rack`'s SKU.
  [[nodiscard]] std::pair<double, double> burst_fraction_range(const Rack& rack) const;

  /// Ground truth: whether `rack`'s (SKU, commission half-year) cohort
  /// received a bad drive batch. Deterministic per fleet seed.
  [[nodiscard]] bool bad_vintage(const Rack& rack) const;
  /// Expected disk-batch events for `rack` during `day`.
  [[nodiscard]] double disk_batch_rate(const Rack& rack, util::DayIndex day) const;
  /// Fraction range of the rack's SERVERS a disk-batch event touches.
  [[nodiscard]] std::pair<double, double> disk_batch_fraction_range(const Rack& rack) const;

  // -- Individual factor terms, exposed for tests and ablations ---------------
  [[nodiscard]] double sku_multiplier(SkuId sku, FaultType fault) const;
  [[nodiscard]] double workload_multiplier(WorkloadId wl, FaultType fault) const;
  [[nodiscard]] double dc_multiplier(const Rack& rack, FaultType fault) const;
  [[nodiscard]] double power_multiplier(double rated_kw) const;
  [[nodiscard]] double age_multiplier(double age_months) const;
  [[nodiscard]] double time_multiplier(util::DayIndex day, FaultType fault) const;
  [[nodiscard]] double environment_multiplier(const Rack& rack, Conditions c,
                                              FaultType fault) const;
  [[nodiscard]] double base_rate(FaultType fault) const;
  /// Device count the base rate multiplies (disks, DIMMs or servers).
  [[nodiscard]] static int device_count(const Rack& rack, FaultType fault);

 private:
  const Fleet* fleet_;
  const EnvironmentModel* env_;
  HazardConfig config_;

  [[nodiscard]] double region_multiplier(const Rack& rack) const;
};

}  // namespace rainshine::simdc
