// Ticket-log CSV interchange.
//
// The analyses don't care whether tickets came from the simulator or a real
// RMA export: `write_ticket_csv` dumps a log in a flat, documented schema
// and `read_ticket_csv` loads one back (validating against a fleet), so an
// operator can run the Q1-Q3 studies on their own data by matching this
// schema. Columns:
//
//   rack_id, server_index, component_index, fault, true_positive,
//   burst_id, open_hour, close_hour
//
// `fault` uses the Table II description strings ("Disk failure", ...);
// hours are integers since the observation epoch; component_index is -1
// for server-level faults; burst_id is -1 for independent tickets (leave
// it -1 for imported data unless you track correlated events).
//
// Real RMA exports are dirty, so import is governed by an
// ingest::ErrorPolicy:
//
//   kStrict     — throw util::precondition_error on the first malformed
//                 record (the historical behavior and still the default).
//   kQuarantine — collect each malformed record into an
//                 ingest::IngestReport with a typed reason code and the
//                 offending column, and keep reading.
//   kRepair     — apply two documented fixups first: records whose
//                 close_hour precedes their open_hour have the two swapped
//                 (busted-clock skew), and exact duplicate records are
//                 dropped once (double-filed tickets). Both are recorded as
//                 repairs; whatever still fails is quarantined.
//
// A leading UTF-8 BOM and CR line endings are tolerated under all policies.
#pragma once

#include <iosfwd>
#include <string>

#include "rainshine/ingest/report.hpp"
#include "rainshine/simdc/tickets.hpp"

namespace rainshine::simdc {

void write_ticket_csv(const TicketLog& log, std::ostream& out);
void write_ticket_csv_file(const TicketLog& log, const std::string& path);

/// Import controls.
struct TicketReadOptions {
  ingest::ErrorPolicy policy = ingest::ErrorPolicy::kStrict;
};

/// Parses a ticket CSV and validates every row against `fleet` (rack ids in
/// range, server/component slots within the rack's SKU shape, close after
/// open). Under kStrict, throws util::precondition_error whose message
/// carries the 1-based row (header = row 1) and the offending column name;
/// under the recoverable policies, bad rows are reported to `report` (if
/// non-null) instead. A missing or mismatched header always throws — there
/// is nothing to recover without the schema anchor.
[[nodiscard]] TicketLog read_ticket_csv(std::istream& in, const Fleet& fleet,
                                        const TicketReadOptions& options,
                                        ingest::IngestReport* report = nullptr);
[[nodiscard]] TicketLog read_ticket_csv(std::istream& in, const Fleet& fleet);

[[nodiscard]] TicketLog read_ticket_csv_file(const std::string& path,
                                             const Fleet& fleet,
                                             const TicketReadOptions& options,
                                             ingest::IngestReport* report = nullptr);
[[nodiscard]] TicketLog read_ticket_csv_file(const std::string& path,
                                             const Fleet& fleet);

}  // namespace rainshine::simdc
