// Ticket-log CSV interchange.
//
// The analyses don't care whether tickets came from the simulator or a real
// RMA export: `write_ticket_csv` dumps a log in a flat, documented schema
// and `read_ticket_csv` loads one back (validating against a fleet), so an
// operator can run the Q1-Q3 studies on their own data by matching this
// schema. Columns:
//
//   rack_id, server_index, component_index, fault, true_positive,
//   burst_id, open_hour, close_hour
//
// `fault` uses the Table II description strings ("Disk failure", ...);
// hours are integers since the observation epoch; component_index is -1
// for server-level faults; burst_id is -1 for independent tickets (leave
// it -1 for imported data unless you track correlated events).
#pragma once

#include <iosfwd>
#include <string>

#include "rainshine/simdc/tickets.hpp"

namespace rainshine::simdc {

void write_ticket_csv(const TicketLog& log, std::ostream& out);
void write_ticket_csv_file(const TicketLog& log, const std::string& path);

/// Parses a ticket CSV and validates every row against `fleet` (rack ids in
/// range, server/component slots within the rack's SKU shape, close after
/// open). Throws util::precondition_error with a row number on any
/// malformed record.
[[nodiscard]] TicketLog read_ticket_csv(std::istream& in, const Fleet& fleet);
[[nodiscard]] TicketLog read_ticket_csv_file(const std::string& path,
                                             const Fleet& fleet);

}  // namespace rainshine::simdc
