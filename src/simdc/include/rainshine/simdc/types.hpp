// Domain vocabulary for the simulated fleet.
//
// Encodes the paper's Table I (DC properties), Table II (ticket taxonomy)
// and Table III (candidate features) as strong types. SKU and workload
// identifiers deliberately mirror the paper's anonymized names (S1..S7,
// W1..W7) so reproduced figures can be read against the originals.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace rainshine::simdc {

// -- Datacenters (Table I) -----------------------------------------------------

enum class DataCenterId : std::uint8_t { kDC1 = 0, kDC2 = 1 };
inline constexpr std::size_t kNumDataCenters = 2;

enum class Cooling : std::uint8_t {
  kAdiabatic,     ///< DC1: evaporative; efficient but tracks outdoor humidity
  kChilledWater,  ///< DC2: traditional HVAC; tight climate envelope
};

enum class Packaging : std::uint8_t { kContainer, kColocation };

// -- Hardware SKUs (Table III: S1&3 storage, S2&4 compute, S5&6 mix, S7 HPC) ---

enum class SkuId : std::uint8_t { kS1 = 0, kS2, kS3, kS4, kS5, kS6, kS7 };
inline constexpr std::size_t kNumSkus = 7;

enum class SkuClass : std::uint8_t { kStorage, kCompute, kMixed, kHpc };

// -- Workloads (Table III: W1&2 compute, W3 HPC, W4&7 storage-compute,
//    W5&6 storage-data) --------------------------------------------------------

enum class WorkloadId : std::uint8_t { kW1 = 0, kW2, kW3, kW4, kW5, kW6, kW7 };
inline constexpr std::size_t kNumWorkloads = 7;

enum class WorkloadClass : std::uint8_t {
  kCompute,
  kHpc,
  kStorageCompute,
  kStorageData,
};

// -- Failure taxonomy (Table II) ------------------------------------------------

enum class TicketCategory : std::uint8_t { kHardware, kSoftware, kBoot, kOther };

/// Fine-grained fault types exactly as Table II lists them.
enum class FaultType : std::uint8_t {
  // Software
  kSoftwareTimeout = 0,
  kDeploymentFailure,
  kNodeAgentCrash,
  // Boot
  kPxeBootFailure,
  kRebootFailure,
  // Hardware
  kDiskFailure,
  kMemoryFailure,
  kPowerFailure,
  kServerFailure,
  kNetworkFailure,
  // Other
  kOther,
};
inline constexpr std::size_t kNumFaultTypes = 11;

/// Device kinds that can be the subject of a hardware RMA; component-level
/// provisioning (Q1-B) distinguishes disks and DIMMs from whole servers.
enum class DeviceKind : std::uint8_t { kServer, kDisk, kDimm };

[[nodiscard]] std::string_view to_string(DataCenterId id) noexcept;
[[nodiscard]] std::string_view to_string(Cooling c) noexcept;
[[nodiscard]] std::string_view to_string(Packaging p) noexcept;
[[nodiscard]] std::string_view to_string(SkuId id) noexcept;
[[nodiscard]] std::string_view to_string(SkuClass c) noexcept;
[[nodiscard]] std::string_view to_string(WorkloadId id) noexcept;
[[nodiscard]] std::string_view to_string(WorkloadClass c) noexcept;
[[nodiscard]] std::string_view to_string(TicketCategory c) noexcept;
[[nodiscard]] std::string_view to_string(FaultType f) noexcept;
[[nodiscard]] std::string_view to_string(DeviceKind k) noexcept;

/// Coarse ticket category a fault type belongs to (Table II's grouping).
[[nodiscard]] constexpr TicketCategory category_of(FaultType f) noexcept {
  switch (f) {
    case FaultType::kSoftwareTimeout:
    case FaultType::kDeploymentFailure:
    case FaultType::kNodeAgentCrash:
      return TicketCategory::kSoftware;
    case FaultType::kPxeBootFailure:
    case FaultType::kRebootFailure:
      return TicketCategory::kBoot;
    case FaultType::kDiskFailure:
    case FaultType::kMemoryFailure:
    case FaultType::kPowerFailure:
    case FaultType::kServerFailure:
    case FaultType::kNetworkFailure:
      return TicketCategory::kHardware;
    case FaultType::kOther:
      return TicketCategory::kOther;
  }
  return TicketCategory::kOther;
}

/// True for the fault types the paper's decision studies use (physical
/// hardware failures resolved by repair/replacement — §IV).
[[nodiscard]] constexpr bool is_hardware(FaultType f) noexcept {
  return category_of(f) == TicketCategory::kHardware;
}

/// Which device kind a hardware fault takes down. Disk/memory faults down a
/// component; power/server/network faults down the whole server. Non-
/// hardware faults also interrupt the server (e.g. during re-image) but are
/// excluded from the decision studies.
[[nodiscard]] constexpr DeviceKind device_kind_of(FaultType f) noexcept {
  switch (f) {
    case FaultType::kDiskFailure:
      return DeviceKind::kDisk;
    case FaultType::kMemoryFailure:
      return DeviceKind::kDimm;
    default:
      return DeviceKind::kServer;
  }
}

/// SKU taxonomy per Table III.
[[nodiscard]] constexpr SkuClass sku_class_of(SkuId id) noexcept {
  switch (id) {
    case SkuId::kS1:
    case SkuId::kS3:
      return SkuClass::kStorage;
    case SkuId::kS2:
    case SkuId::kS4:
      return SkuClass::kCompute;
    case SkuId::kS5:
    case SkuId::kS6:
      return SkuClass::kMixed;
    case SkuId::kS7:
      return SkuClass::kHpc;
  }
  return SkuClass::kMixed;
}

/// Workload taxonomy per Table III.
[[nodiscard]] constexpr WorkloadClass workload_class_of(WorkloadId id) noexcept {
  switch (id) {
    case WorkloadId::kW1:
    case WorkloadId::kW2:
      return WorkloadClass::kCompute;
    case WorkloadId::kW3:
      return WorkloadClass::kHpc;
    case WorkloadId::kW4:
    case WorkloadId::kW7:
      return WorkloadClass::kStorageCompute;
    case WorkloadId::kW5:
    case WorkloadId::kW6:
      return WorkloadClass::kStorageData;
  }
  return WorkloadClass::kCompute;
}

/// Iteration helpers.
inline constexpr std::array<FaultType, kNumFaultTypes> kAllFaultTypes = {
    FaultType::kSoftwareTimeout, FaultType::kDeploymentFailure,
    FaultType::kNodeAgentCrash,  FaultType::kPxeBootFailure,
    FaultType::kRebootFailure,   FaultType::kDiskFailure,
    FaultType::kMemoryFailure,   FaultType::kPowerFailure,
    FaultType::kServerFailure,   FaultType::kNetworkFailure,
    FaultType::kOther};

inline constexpr std::array<SkuId, kNumSkus> kAllSkus = {
    SkuId::kS1, SkuId::kS2, SkuId::kS3, SkuId::kS4,
    SkuId::kS5, SkuId::kS6, SkuId::kS7};

inline constexpr std::array<WorkloadId, kNumWorkloads> kAllWorkloads = {
    WorkloadId::kW1, WorkloadId::kW2, WorkloadId::kW3, WorkloadId::kW4,
    WorkloadId::kW5, WorkloadId::kW6, WorkloadId::kW7};

}  // namespace rainshine::simdc
