// Environmental telemetry synthesis.
//
// The paper's DCs instrument temperature and relative humidity per rack (and
// coarser), and its Q3 analysis hinges on how the two cooling technologies
// couple the machine-room environment to the outdoors:
//
//   * DC1 (adiabatic/evaporative, warm dry climate): inlet temperature and
//     humidity track outdoor conditions noticeably; hot, very dry spells
//     push racks above 78F while RH drops under 25% — the joint condition
//     Fig. 18 flags.
//   * DC2 (chilled-water HVAC): a tight envelope around the setpoint,
//     essentially decoupled from weather.
//
// Rather than storing a 2.5-year x fleet-wide trace (hundreds of millions of
// samples), conditions are a pure deterministic function of
// (datacenter, rack, hour): seasonal + diurnal sinusoids, hash-derived daily
// weather deviations shared by all racks of a DC (so environmental stress is
// spatially correlated, as in reality), per-rack static offsets from power
// density and row position, and small sensor noise. Identical inputs always
// yield identical readings for a given seed.
#pragma once

#include <array>

#include "rainshine/simdc/topology.hpp"
#include "rainshine/util/calendar.hpp"

namespace rainshine::simdc {

/// One instantaneous reading at a rack inlet.
struct Conditions {
  double temperature_f = 70.0;      ///< Fahrenheit (Table III: 56-90F)
  double relative_humidity = 45.0;  ///< percent (Table III: 5-87%)
};

/// Outdoor climate parameters for a DC site.
struct ClimateSpec {
  double mean_temp_f = 60.0;        ///< annual mean outdoor temperature
  double seasonal_amplitude_f = 20.0;
  double diurnal_amplitude_f = 10.0;
  double weather_noise_f = 6.0;     ///< sd of day-scale weather deviations
  double mean_rh = 50.0;            ///< annual mean outdoor RH (%)
  double seasonal_rh_swing = 20.0;  ///< RH drops by this much at peak summer
  double weather_noise_rh = 8.0;
  /// Day-of-year at which summer peaks (northern hemisphere mid-July).
  int peak_day_of_year = 200;
};

/// How a DC's cooling couples indoor conditions to the outdoors.
struct CoolingCoupling {
  double setpoint_f = 70.0;
  double temp_coupling = 0.1;   ///< inlet dT per outdoor dT from site mean
  double rh_offset = 0.0;       ///< added to coupled outdoor RH
  double rh_coupling = 0.1;     ///< inlet dRH per outdoor dRH
  double rh_setpoint = 45.0;
  double sensor_noise_f = 0.8;
  double sensor_noise_rh = 2.0;
};

class EnvironmentModel {
 public:
  /// Uses built-in climate/coupling presets chosen by each DC's cooling
  /// technology (see file comment). `seed` decorrelates the weather of
  /// different simulation runs.
  EnvironmentModel(const Fleet& fleet, std::uint64_t seed);

  /// Conditions at `rack`'s inlet during `hour`.
  [[nodiscard]] Conditions at(const Rack& rack, util::HourIndex hour) const;

  /// The representative hours daily_mean averages — four samples capture a
  /// diurnal sinusoid exactly. Shared with the columnar fast path
  /// (fleet_table.hpp), which must average the very same instants.
  static constexpr std::array<int, 4> kDailyMeanHours = {3, 9, 15, 21};

  /// Mean of the day's readings (computed from representative hours).
  [[nodiscard]] Conditions daily_mean(const Rack& rack, util::DayIndex day) const;

  /// Site outdoor temperature (before cooling), e.g. for reporting.
  [[nodiscard]] double outdoor_temperature_f(DataCenterId dc, util::HourIndex hour) const;
  [[nodiscard]] double outdoor_rh(DataCenterId dc, util::HourIndex hour) const;

  [[nodiscard]] static ClimateSpec climate_preset(Cooling cooling) noexcept;
  [[nodiscard]] static CoolingCoupling coupling_preset(Cooling cooling) noexcept;

  /// A copy of this model with `dc`'s cooling setpoint shifted by
  /// `delta_f` degrees — the counterfactual behind the Q3 set-point
  /// trade-off study (what happens to conditions if we run the hall
  /// warmer/cooler). Weather and per-rack offsets are unchanged.
  [[nodiscard]] EnvironmentModel with_setpoint_offset(DataCenterId dc,
                                                      double delta_f) const;

 private:
  // The columnar engine (fleet_table.hpp) flattens this model's per-rack
  // static offsets and per-(dc, hour) coupled terms into SoA columns; it
  // needs the live climate_/coupling_ state (with_setpoint_offset may have
  // shifted it) and the private noise hash to reproduce at() bit for bit.
  friend class FleetTable;

  const Fleet* fleet_;
  std::uint64_t seed_;
  std::array<ClimateSpec, kNumDataCenters> climate_{};
  std::array<CoolingCoupling, kNumDataCenters> coupling_{};

  /// Deterministic standard-normal value keyed by (stream, a, b).
  [[nodiscard]] double hash_normal(std::uint64_t stream, std::uint64_t a,
                                   std::uint64_t b) const;
};

}  // namespace rainshine::simdc
