// Fleet topology: the spatial hierarchy DC -> region -> row -> rack ->
// server -> {disks, DIMMs}, with the paper's structural parameters
// (Table I/III): per-DC rack counts, SKU hardware shapes, rack power ratings
// 4-15 kW, equipment ages 0-5 years, rack-granularity workload assignment.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rainshine/simdc/types.hpp"
#include "rainshine/util/calendar.hpp"
#include "rainshine/util/rng.hpp"

namespace rainshine::simdc {

/// Hardware shape of a SKU. Storage SKUs pack ~20 servers and many HDDs;
/// compute SKUs pack >40 servers and ~4 HDDs (paper §IV).
struct SkuSpec {
  SkuId id = SkuId::kS1;
  int servers_per_rack = 24;
  int disks_per_server = 4;
  int dimms_per_server = 8;
  double rated_power_kw = 8.0;  ///< nominal; per-rack rating is jittered around it
};

/// Built-in SKU table consistent with the paper's description.
[[nodiscard]] const std::vector<SkuSpec>& default_sku_specs();
[[nodiscard]] const SkuSpec& sku_spec(SkuId id);

/// A rack: the provisioning and workload-assignment granularity.
struct Rack {
  std::int32_t id = 0;          ///< fleet-wide dense index
  DataCenterId dc = DataCenterId::kDC1;
  std::int32_t region = 0;      ///< intra-DC region (Fig. 2's DC1-1..DC2-3)
  std::int32_t row = 0;         ///< row of racks within the DC
  std::int32_t pos_in_row = 0;  ///< slot within the row (affects airflow)
  SkuId sku = SkuId::kS1;
  WorkloadId workload = WorkloadId::kW1;
  double rated_power_kw = 8.0;      ///< discrete 4-15 kW rating (Fig. 8)
  std::int32_t commission_day = 0;  ///< day index when the rack entered service
                                    ///< (negative = before the observation window)

  [[nodiscard]] int servers() const { return sku_spec(sku).servers_per_rack; }
  [[nodiscard]] int disks() const {
    return servers() * sku_spec(sku).disks_per_server;
  }
  [[nodiscard]] int dimms() const {
    return servers() * sku_spec(sku).dimms_per_server;
  }
  /// Equipment age in months at `day` (clamped at 0 for pre-commission days).
  [[nodiscard]] double age_months(util::DayIndex day) const {
    const double days = static_cast<double>(day - commission_day);
    return days <= 0.0 ? 0.0 : days / 30.44;
  }
  /// "DC1-3"-style region label used in Fig. 2.
  [[nodiscard]] std::string region_label() const;
};

/// Static description of one datacenter (Table I + Table III ranges).
struct DataCenterSpec {
  DataCenterId id = DataCenterId::kDC1;
  Cooling cooling = Cooling::kAdiabatic;
  Packaging packaging = Packaging::kContainer;
  int availability_nines = 3;
  int num_regions = 4;
  int num_rows = 18;
  int racks_per_row = 18;

  [[nodiscard]] int num_racks() const { return num_rows * racks_per_row; }
};

/// Fleet-construction parameters.
struct FleetSpec {
  std::vector<DataCenterSpec> datacenters;
  /// Observation epoch and window (paper: >2.5 years from 2012).
  util::CivilDate epoch{2012, 1, 1};
  util::DayIndex num_days = 913;  // 2.5 years
  /// Oldest equipment at the start of the window, in months (Table III: 0-5 y).
  double max_initial_age_months = 54.0;
  /// Fraction of racks commissioned during (rather than before) the window;
  /// these young racks exercise the infant-mortality region of Fig. 9.
  double in_window_commission_fraction = 0.25;
  std::uint64_t seed = 2017;

  /// The paper-scale default: DC1 331 racks / 18 rows, DC2 290 racks /
  /// 32 rows, 2.5 years.
  [[nodiscard]] static FleetSpec paper_default();
  /// A miniature fleet for fast unit tests (2 small DCs, ~60 days).
  [[nodiscard]] static FleetSpec test_default();
};

/// Immutable built topology.
class Fleet {
 public:
  /// Builds racks deterministically from `spec` (layout, SKU/workload
  /// assignment, power ratings, commission dates all derive from spec.seed).
  explicit Fleet(FleetSpec spec);

  /// Moves keep the racks_of caches valid (the rack storage migrates
  /// wholesale); copies would leave them pointing into the source fleet, so
  /// they are disallowed — share a built Fleet by reference.
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;
  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  [[nodiscard]] const FleetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const util::Calendar& calendar() const noexcept { return calendar_; }
  [[nodiscard]] const std::vector<Rack>& racks() const noexcept { return racks_; }
  [[nodiscard]] const Rack& rack(std::int32_t id) const;
  [[nodiscard]] std::size_t num_racks() const noexcept { return racks_.size(); }
  [[nodiscard]] std::size_t num_servers() const noexcept { return num_servers_; }

  /// Racks assigned to `workload`. The study loops hit these per tree/per
  /// bootstrap replicate, so the groupings are indexed once at construction
  /// and returned as views — no per-call allocation.
  [[nodiscard]] std::span<const Rack* const> racks_of(WorkloadId workload) const {
    return by_workload_[static_cast<std::size_t>(workload)];
  }
  /// Racks of `sku`.
  [[nodiscard]] std::span<const Rack* const> racks_of(SkuId sku) const {
    return by_sku_[static_cast<std::size_t>(sku)];
  }
  /// Racks in `dc`.
  [[nodiscard]] std::span<const Rack* const> racks_of(DataCenterId dc) const {
    return by_dc_[static_cast<std::size_t>(dc)];
  }

  [[nodiscard]] const DataCenterSpec& dc_spec(DataCenterId id) const;

 private:
  FleetSpec spec_;
  util::Calendar calendar_;
  std::vector<Rack> racks_;
  std::size_t num_servers_ = 0;
  std::array<std::vector<const Rack*>, kNumWorkloads> by_workload_;
  std::array<std::vector<const Rack*>, kNumSkus> by_sku_;
  std::array<std::vector<const Rack*>, kNumDataCenters> by_dc_;
};

}  // namespace rainshine::simdc
