// Columnar (SoA) hot-path view of the fleet for the streaming ticket engine.
//
// simulate_rack_day evaluates the full multi-factor hazard through the
// object graph — Rack -> SkuSpec, HazardModel table lookups, and four
// EnvironmentModel::at() calls per (rack, day) cell, each re-deriving the
// site's outdoor weather and the rack's static airflow offsets. That costs
// hundreds of hash/trig/pow evaluations per cell and reads a dozen scattered
// cache lines; at a million servers (tens of thousands of racks x days) it
// dominates the sweep.
//
// FleetTable flattens everything that is static per rack — the first six
// factors of the hazard product, burst/batch statics, severity ranges, the
// three inlet-temperature offsets — into dense per-rack columns built once,
// and everything that is shared per day — outdoor weather coupling, weekday
// and month multipliers, the age bathtub keyed by integer days-in-service —
// into small per-day tables. The per-cell work drops to a handful of
// multiplies plus the eight irreducible per-(rack, hour) sensor-noise
// hashes.
//
// Bit-identity contract: every value this table produces is computed with
// the SAME operations in the SAME order as the HazardModel /
// EnvironmentModel expressions it mirrors (floating-point multiplication is
// not associative, and a one-ulp rate difference would shift a Poisson draw
// and desynchronize the whole ticket stream). Precomputed factors are
// always complete left-associated prefixes of the original chains, never
// regrouped. tests/simdc/test_fleet_table.cpp pins this cell by cell
// against the reference models.
#pragma once

#include <vector>

#include "rainshine/simdc/tickets.hpp"

namespace rainshine::simdc {

/// Terms shared by every rack for one simulated day: the weather-coupled
/// inlet deltas per (DC, representative hour) and the fleet-wide time
/// multipliers. Computed once per day, read by every cell.
struct DayTerms {
  /// k.temp_coupling * (t_out - climate.mean_temp_f) per DC per
  /// representative hour (EnvironmentModel::kDailyMeanHours).
  std::array<std::array<double, 4>, kNumDataCenters> coupled_t{};
  std::array<std::array<double, 4>, kNumDataCenters> coupled_rh{};
  /// Absolute hour index of each representative hour (the sensor-noise
  /// hash key).
  std::array<util::HourIndex, 4> hours{};
  double time_hw = 1.0;  ///< weekday x month multiplier, hardware faults
  double time_sw = 1.0;  ///< same for software/boot/other faults
};

class FleetTable {
 public:
  /// Flattens the hazard's fleet + environment. The table keeps pointers to
  /// neither Rack nor SkuSpec afterwards; it does keep the EnvironmentModel
  /// (for the irreducible per-(rack, hour) noise hash) and the Fleet's
  /// calendar, so both must outlive the table.
  explicit FleetTable(const HazardModel& hazard);

  [[nodiscard]] std::size_t num_racks() const noexcept { return geom_.size(); }
  [[nodiscard]] util::DayIndex num_days() const noexcept { return num_days_; }
  [[nodiscard]] std::int32_t rack_id(std::size_t r) const noexcept {
    return geom_[r].rack_id;
  }
  [[nodiscard]] const CellGeom& geom(std::size_t r) const noexcept {
    return geom_[r];
  }

  /// The day-shared terms; O(DCs) hash/trig work instead of O(racks).
  [[nodiscard]] DayTerms day_terms(util::DayIndex day) const;

  /// Mean inlet conditions for rack `r`, bit-identical to
  /// EnvironmentModel::daily_mean(rack, day) for the day `terms` was built
  /// for.
  [[nodiscard]] Conditions daily_mean(std::size_t r, const DayTerms& terms) const;

  /// Every Poisson intensity simulate_cell consumes for cell (r, day),
  /// bit-identical to the HazardModel evaluations simulate_rack_day makes.
  void cell_rates(std::size_t r, util::DayIndex day, const DayTerms& terms,
                  CellRates& out) const;

 private:
  const EnvironmentModel* env_;
  HazardConfig cfg_;
  util::DayIndex num_days_ = 0;

  // -- Per-rack columns (index = position in Fleet::racks()) -----------------
  std::vector<CellGeom> geom_;
  std::vector<std::int32_t> commission_day_;
  std::vector<std::uint8_t> dc_;             ///< DataCenterId as index
  /// Left-associated product of the six rack-static hazard factors
  /// (base * devices * sku * workload * dc * power), one per fault type;
  /// rate = ((static * age) * time) * env completes the original chain.
  std::vector<std::array<double, kNumFaultTypes>> static_rate_;
  std::vector<double> burst_static_;         ///< (base * dc_burst) * power
  std::vector<double> burst_lo_, burst_hi_;
  std::vector<double> batch_static_;
  std::vector<double> batch_lo_, batch_hi_;
  // The three per-rack inlet offsets are kept separate (not pre-summed):
  // at() adds them one by one and fp addition is not associative either.
  std::vector<double> power_off_, pos_off_, inst_off_;

  // -- Per-DC environment parameters (copied from the live models; the live
  //    coupling matters — with_setpoint_offset may have shifted it) ----------
  std::array<double, kNumDataCenters> temp_coupling_{};
  std::array<double, kNumDataCenters> rh_coupling_{};
  std::array<double, kNumDataCenters> mean_temp_f_{};
  std::array<double, kNumDataCenters> mean_rh_{};
  std::array<double, kNumDataCenters> setpoint_f_{};
  std::array<double, kNumDataCenters> sensor_noise_f_{};
  std::array<double, kNumDataCenters> rh_setpoint_{};
  std::array<double, kNumDataCenters> rh_offset_{};
  std::array<double, kNumDataCenters> sensor_noise_rh_{};
  std::array<bool, kNumDataCenters> env_sensitive_{};

  // -- Per-day / per-age tables ----------------------------------------------
  std::vector<double> time_hw_, time_sw_;    ///< [day]
  /// Bathtub multiplier and infant flag keyed by integer days in service
  /// (delta = day - commission_day >= 0); age_months depends only on delta.
  std::vector<double> age_mult_;
  std::vector<std::uint8_t> infant_;
};

}  // namespace rainshine::simdc
