#include "rainshine/table/csv.hpp"

#include <fstream>
#include <sstream>

#include "rainshine/ingest/metrics.hpp"
#include "rainshine/util/check.hpp"
#include "rainshine/util/strings.hpp"

namespace rainshine::table {

namespace {

using ingest::ErrorPolicy;
using ingest::IngestReport;
using ingest::ReasonCode;

/// Splits one CSV record honoring RFC 4180 quoting.
std::vector<std::string> split_record(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

std::string quote_if_needed(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

ColumnType infer_type(const std::vector<std::string>& cells) {
  bool all_int = true;
  bool all_num = true;
  bool any_value = false;
  for (const auto& cell : cells) {
    if (cell.empty()) continue;
    any_value = true;
    long long iv = 0;
    double dv = 0.0;
    if (!util::parse_int(cell, iv)) all_int = false;
    if (!util::parse_double(cell, dv)) all_num = false;
  }
  if (!any_value || !all_num) return ColumnType::kNominal;
  return all_int ? ColumnType::kOrdinal : ColumnType::kContinuous;
}

/// Strips a UTF-8 byte-order mark (common in spreadsheet exports).
void strip_bom(std::string& line) {
  if (line.size() >= 3 && line[0] == '\xEF' && line[1] == '\xBB' &&
      line[2] == '\xBF') {
    line.erase(0, 3);
  }
}

/// Reads one logical CSV record into `record`, continuing across physical
/// lines while a quoted field is still open (RFC 4180 allows embedded
/// newlines inside quotes — write_csv emits them, so read_csv must take them
/// back). `lines` receives the physical line count consumed (0 at EOF).
/// Quote parity is what matters: an escaped "" flips the state twice, so the
/// record ends exactly when every opened quote has closed.
bool read_record(std::istream& in, std::string& record, std::size_t& lines) {
  record.clear();
  lines = 0;
  std::string line;
  bool quote_open = false;
  while (std::getline(in, line)) {
    ++lines;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (lines > 1) record += '\n';
    record += line;
    for (const char c : line) {
      if (c == '"') quote_open = !quote_open;
    }
    if (!quote_open) return true;
  }
  // EOF inside an open quote: surface whatever accumulated; the field-count
  // check downstream will flag the damage.
  return lines > 0;
}

/// True when `cell` parses as `type` (empty cells are missing, always fine).
bool cell_parses(const std::string& cell, ColumnType type) {
  if (cell.empty()) return true;
  long long iv = 0;
  double dv = 0.0;
  switch (type) {
    case ColumnType::kContinuous: return util::parse_double(cell, dv);
    case ColumnType::kOrdinal: return util::parse_int(cell, iv);
    case ColumnType::kNominal: return true;
  }
  return true;
}

void push_cell(Column& col, const std::string& cell) {
  if (cell.empty()) {
    col.push_missing();
    return;
  }
  switch (col.type()) {
    case ColumnType::kContinuous: {
      double v = 0.0;
      util::ensure(util::parse_double(cell, v),
                   "unvalidated continuous cell: " + cell);
      col.push_continuous(v);
      return;
    }
    case ColumnType::kOrdinal: {
      long long v = 0;
      util::ensure(util::parse_int(cell, v), "unvalidated ordinal cell: " + cell);
      col.push_ordinal(static_cast<std::int32_t>(v));
      return;
    }
    case ColumnType::kNominal:
      col.push_nominal(cell);
      return;
  }
}

}  // namespace

Table read_csv(std::istream& in, std::span<const CsvSchemaEntry> schema,
               const CsvReadOptions& options, IngestReport* report) {
  // Accounting always runs — into the caller's report when one is supplied
  // (snapshotting it first so cross-read reuse publishes only this pass's
  // delta), or into a local one so metrics don't depend on the caller
  // wanting a report.
  ingest::IngestReport local_report;
  ingest::IngestReport* rep = report != nullptr ? report : &local_report;
  const ingest::IngestReport before = *rep;

  const ErrorPolicy policy = options.policy;
  std::string line;
  std::size_t lines_read = 0;
  util::require(read_record(in, line, lines_read), "CSV row 1: missing header");
  strip_bom(line);
  const std::vector<std::string> header = split_record(line);
  std::size_t physical_line = lines_read;  // header ends on this line

  if (!schema.empty()) {
    util::require(schema.size() == header.size(),
                  "CSV row 1: schema declares " + std::to_string(schema.size()) +
                      " columns, header has " + std::to_string(header.size()));
    for (std::size_t i = 0; i < header.size(); ++i) {
      util::require(schema[i].name == header[i],
                    "CSV row 1, column '" + header[i] +
                        "': schema expects column '" + schema[i].name + "'");
    }
  }

  // Buffer all records; we need a full pass for type inference anyway.
  std::vector<std::vector<std::string>> records;
  while (read_record(in, line, lines_read)) {
    // `row` is the 1-based physical line the record starts on (header =
    // row 1), so diagnostics keep pointing at real file lines even when
    // quoted records span several of them.
    const std::size_t row = physical_line + 1;
    physical_line += lines_read;
    // An empty line is a record only for single-column tables (one missing
    // cell); in wider tables it is formatting noise and is skipped.
    if (line.empty() && header.size() > 1) continue;
    rep->saw_row();
    auto fields = split_record(line);
    if (fields.size() != header.size()) {
      const std::string detail = "expected " + std::to_string(header.size()) +
                                 " fields, got " + std::to_string(fields.size());
      util::require(policy != ErrorPolicy::kStrict,
                    "CSV row " + std::to_string(row) + ": " + detail);
      rep->quarantine({row, "", ReasonCode::kWidthMismatch, detail});
      continue;
    }
    // With a declared schema, reject or repair cells that fail their type
    // before any column is built, so surviving columns stay row-aligned.
    bool rejected = false;
    for (std::size_t c = 0; c < schema.size() && !rejected; ++c) {
      if (cell_parses(fields[c], schema[c].type)) continue;
      const std::string detail = "bad " + std::string(to_string(schema[c].type)) +
                                 " cell '" + fields[c] + "'";
      switch (policy) {
        case ErrorPolicy::kStrict:
          throw util::precondition_error("CSV row " + std::to_string(row) +
                                         ", column '" + schema[c].name +
                                         "': " + detail);
        case ErrorPolicy::kQuarantine:
          rep->quarantine({row, schema[c].name, ReasonCode::kBadNumber, detail});
          rejected = true;
          break;
        case ErrorPolicy::kRepair:
          fields[c].clear();  // documented fixup: unparseable -> missing
          rep->repair({row, schema[c].name, ReasonCode::kBadNumber, detail});
          break;
      }
    }
    if (rejected) continue;
    rep->accept();
    records.push_back(std::move(fields));
  }
  ingest::publish_report_delta(before, *rep);

  Table out;
  for (std::size_t c = 0; c < header.size(); ++c) {
    ColumnType type;
    if (!schema.empty()) {
      type = schema[c].type;
    } else {
      std::vector<std::string> cells;
      cells.reserve(records.size());
      for (const auto& rec : records) cells.push_back(rec[c]);
      type = infer_type(cells);
    }
    Column col(type);
    for (const auto& rec : records) push_cell(col, rec[c]);
    out.add_column(header[c], std::move(col));
  }
  return out;
}

Table read_csv(std::istream& in, std::span<const CsvSchemaEntry> schema) {
  return read_csv(in, schema, CsvReadOptions{}, nullptr);
}

Table read_csv_file(const std::string& path, std::span<const CsvSchemaEntry> schema,
                    const CsvReadOptions& options, IngestReport* report) {
  std::ifstream in(path);
  util::require(in.good(), "cannot open CSV file: " + path);
  return read_csv(in, schema, options, report);
}

Table read_csv_file(const std::string& path, std::span<const CsvSchemaEntry> schema) {
  return read_csv_file(path, schema, CsvReadOptions{}, nullptr);
}

void write_csv(const Table& table, std::ostream& out) {
  for (std::size_t c = 0; c < table.num_columns(); ++c) {
    if (c) out << ',';
    out << quote_if_needed(table.column_name(c));
  }
  out << '\n';
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.num_columns(); ++c) {
      if (c) out << ',';
      out << quote_if_needed(table.column_at(c).cell_to_string(r));
    }
    out << '\n';
  }
}

void write_csv_file(const Table& table, const std::string& path) {
  std::ofstream out(path);
  util::require(out.good(), "cannot open CSV file for writing: " + path);
  write_csv(table, out);
  util::require(out.good(), "I/O error writing CSV file: " + path);
}

}  // namespace rainshine::table
