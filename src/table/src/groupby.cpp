#include "rainshine/table/groupby.hpp"

#include <map>

#include "rainshine/stats/descriptive.hpp"
#include "rainshine/util/check.hpp"

namespace rainshine::table {

std::vector<Group> group_by(const Table& table,
                            std::span<const std::string> key_columns) {
  util::require(!key_columns.empty(), "group_by needs at least one key column");
  std::vector<const Column*> keys;
  keys.reserve(key_columns.size());
  for (const auto& name : key_columns) keys.push_back(&table.column(name));

  std::vector<Group> groups;
  std::map<std::vector<std::string>, std::size_t> index;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> key;
    key.reserve(keys.size());
    for (const Column* col : keys) key.push_back(col->cell_to_string(r));
    const auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) groups.push_back(Group{std::move(key), {}});
    groups[it->second].rows.push_back(r);
  }
  return groups;
}

namespace {

double reduce(const Column& col, const std::vector<std::size_t>& rows, Reduction how) {
  stats::Accumulator acc;
  std::vector<double> values;
  if (how == Reduction::kP95) values.reserve(rows.size());
  for (const auto r : rows) {
    if (col.is_missing(r)) continue;
    const double v = col.as_double(r);
    acc.add(v);
    if (how == Reduction::kP95) values.push_back(v);
  }
  switch (how) {
    case Reduction::kCount: return static_cast<double>(acc.count());
    case Reduction::kSum: return acc.sum();
    case Reduction::kMean: return acc.mean();
    case Reduction::kStddev: return acc.sample_stddev();
    case Reduction::kMin: return acc.min();
    case Reduction::kMax: return acc.max();
    case Reduction::kP95:
      return values.empty() ? 0.0 : stats::quantile(values, 0.95);
  }
  return 0.0;
}

}  // namespace

Table aggregate(const Table& table, std::span<const std::string> key_columns,
                std::span<const Aggregation> aggregations) {
  util::require(!aggregations.empty(), "aggregate needs at least one aggregation");
  const std::vector<Group> groups = group_by(table, key_columns);

  Table out;
  for (std::size_t k = 0; k < key_columns.size(); ++k) {
    Column col(ColumnType::kNominal);
    for (const auto& g : groups) col.push_nominal(g.key[k]);
    out.add_column(key_columns[k], std::move(col));
  }
  for (const auto& agg : aggregations) {
    const Column& value_col = table.column(agg.value_column);
    std::vector<double> values;
    values.reserve(groups.size());
    for (const auto& g : groups) values.push_back(reduce(value_col, g.rows, agg.reduction));
    out.add_column(agg.output_name, Column::continuous(std::move(values)));
  }
  return out;
}

}  // namespace rainshine::table
