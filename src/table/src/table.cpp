#include "rainshine/table/table.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "rainshine/util/check.hpp"

namespace rainshine::table {

std::optional<std::size_t> Table::index_of(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return std::nullopt;
}

void Table::add_column(std::string name, Column column) {
  util::require(!index_of(name).has_value(), "duplicate column name: " + name);
  if (!columns_.empty()) {
    util::require(column.size() == num_rows_,
                  "column '" + name + "' length mismatch");
  } else {
    num_rows_ = column.size();
  }
  names_.push_back(std::move(name));
  columns_.push_back(std::move(column));
}

bool Table::has_column(std::string_view name) const noexcept {
  return index_of(name).has_value();
}

const Column& Table::column(std::string_view name) const {
  const auto idx = index_of(name);
  util::require(idx.has_value(), "no such column: " + std::string(name));
  return columns_[*idx];
}

Column& Table::column(std::string_view name) {
  const auto idx = index_of(name);
  util::require(idx.has_value(), "no such column: " + std::string(name));
  return columns_[*idx];
}

const Column& Table::column_at(std::size_t index) const {
  util::require(index < columns_.size(), "column index out of range");
  return columns_[index];
}

const std::string& Table::column_name(std::size_t index) const {
  util::require(index < names_.size(), "column index out of range");
  return names_[index];
}

Table Table::take(std::span<const std::size_t> indices) const {
  Table out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out.add_column(names_[c], columns_[c].take(indices));
  }
  if (columns_.empty()) out.num_rows_ = 0;
  return out;
}

std::vector<std::size_t> Table::find_rows(
    const std::function<bool(std::size_t)>& predicate) const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < num_rows_; ++r) {
    if (predicate(r)) out.push_back(r);
  }
  return out;
}

Table Table::filter(const std::function<bool(std::size_t)>& predicate) const {
  return take(find_rows(predicate));
}

Table Table::select(std::span<const std::string> names) const {
  Table out;
  for (const auto& name : names) out.add_column(name, column(name));
  return out;
}

std::vector<std::size_t> Table::sorted_indices(std::string_view name) const {
  const Column& col = column(name);
  std::vector<std::size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = col.as_double(a);
    const double vb = col.as_double(b);
    if (std::isnan(va)) return false;  // missing sorts last
    if (std::isnan(vb)) return true;
    return va < vb;
  });
  return order;
}

std::string Table::preview(std::size_t max_rows) const {
  std::ostringstream os;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    if (c) os << '\t';
    os << names_[c];
  }
  os << '\n';
  const std::size_t rows = std::min(max_rows, num_rows_);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << '\t';
      os << columns_[c].cell_to_string(r);
    }
    os << '\n';
  }
  if (rows < num_rows_) os << "... (" << num_rows_ - rows << " more rows)\n";
  return os.str();
}

// -- TableBuilder -------------------------------------------------------------

TableBuilder& TableBuilder::add_continuous(std::string name) {
  util::require(!in_row_, "cannot add columns after begin_row");
  pending_.push_back({std::move(name), Column(ColumnType::kContinuous), false});
  return *this;
}

TableBuilder& TableBuilder::add_ordinal(std::string name) {
  util::require(!in_row_, "cannot add columns after begin_row");
  pending_.push_back({std::move(name), Column(ColumnType::kOrdinal), false});
  return *this;
}

TableBuilder& TableBuilder::add_nominal(std::string name) {
  util::require(!in_row_, "cannot add columns after begin_row");
  pending_.push_back({std::move(name), Column(ColumnType::kNominal), false});
  return *this;
}

TableBuilder::Pending& TableBuilder::pending_for(std::string_view name) {
  for (auto& p : pending_) {
    if (p.name == name) {
      util::require(in_row_, "set outside of a row");
      util::require(!p.set_in_current_row,
                    "column '" + p.name + "' set twice in one row");
      p.set_in_current_row = true;
      return p;
    }
  }
  throw util::precondition_error("no such column: " + std::string(name));
}

void TableBuilder::close_row() {
  for (auto& p : pending_) {
    util::require(p.set_in_current_row, "column '" + p.name + "' not set in row");
    p.set_in_current_row = false;
  }
}

void TableBuilder::begin_row() {
  util::require(!pending_.empty(), "begin_row on empty schema");
  if (in_row_) close_row();
  in_row_ = true;
}

void TableBuilder::set(std::string_view name, double value) {
  pending_for(name).column.push_continuous(value);
}

void TableBuilder::set(std::string_view name, std::int32_t value) {
  pending_for(name).column.push_ordinal(value);
}

void TableBuilder::set(std::string_view name, std::string_view label) {
  pending_for(name).column.push_nominal(label);
}

void TableBuilder::set_missing(std::string_view name) {
  pending_for(name).column.push_missing();
}

Table TableBuilder::finish() {
  if (in_row_) close_row();
  Table out;
  for (auto& p : pending_) out.add_column(std::move(p.name), std::move(p.column));
  pending_.clear();
  in_row_ = false;
  return out;
}

}  // namespace rainshine::table
