#include "rainshine/table/column.hpp"

#include <cmath>

#include "rainshine/util/check.hpp"
#include "rainshine/util/strings.hpp"

namespace rainshine::table {

std::string_view to_string(ColumnType t) noexcept {
  switch (t) {
    case ColumnType::kContinuous: return "continuous";
    case ColumnType::kOrdinal: return "ordinal";
    case ColumnType::kNominal: return "nominal";
  }
  return "?";
}

Column::Column(ColumnType type) : type_(type) {
  if (type_ == ColumnType::kContinuous) {
    data_ = std::vector<double>{};
  } else {
    data_ = std::vector<std::int32_t>{};
  }
}

Column Column::continuous(std::vector<double> values) {
  Column c(ColumnType::kContinuous);
  c.data_ = std::move(values);
  return c;
}

Column Column::ordinal(std::vector<std::int32_t> values) {
  Column c(ColumnType::kOrdinal);
  c.data_ = std::move(values);
  return c;
}

Column Column::nominal(std::span<const std::string> labels) {
  Column c(ColumnType::kNominal);
  for (const auto& label : labels) c.push_nominal(label);
  return c;
}

Column Column::nominal(std::vector<std::int32_t> codes, std::vector<std::string> dictionary) {
  Column c(ColumnType::kNominal);
  for (const auto code : codes) {
    util::require(code == kMissingCode ||
                      (code >= 0 && static_cast<std::size_t>(code) < dictionary.size()),
                  "nominal code outside dictionary");
  }
  c.data_ = std::move(codes);
  c.dictionary_ = std::move(dictionary);
  for (std::size_t i = 0; i < c.dictionary_.size(); ++i) {
    c.dict_index_.emplace(c.dictionary_[i], static_cast<std::int32_t>(i));
  }
  util::require(c.dict_index_.size() == c.dictionary_.size(),
                "nominal dictionary has duplicate labels");
  return c;
}

std::vector<double>& Column::doubles() { return std::get<std::vector<double>>(data_); }
const std::vector<double>& Column::doubles() const {
  return std::get<std::vector<double>>(data_);
}
std::vector<std::int32_t>& Column::ints() {
  return std::get<std::vector<std::int32_t>>(data_);
}
const std::vector<std::int32_t>& Column::ints() const {
  return std::get<std::vector<std::int32_t>>(data_);
}

std::size_t Column::size() const noexcept {
  return type_ == ColumnType::kContinuous
             ? std::get<std::vector<double>>(data_).size()
             : std::get<std::vector<std::int32_t>>(data_).size();
}

void Column::push_continuous(double v) {
  util::require(type_ == ColumnType::kContinuous, "push_continuous on non-continuous column");
  doubles().push_back(v);
}

void Column::push_ordinal(std::int32_t v) {
  util::require(type_ == ColumnType::kOrdinal, "push_ordinal on non-ordinal column");
  ints().push_back(v);
}

void Column::push_nominal(std::string_view label) {
  util::require(type_ == ColumnType::kNominal, "push_nominal on non-nominal column");
  const auto it = dict_index_.find(std::string(label));
  if (it != dict_index_.end()) {
    ints().push_back(it->second);
    return;
  }
  const auto code = static_cast<std::int32_t>(dictionary_.size());
  dictionary_.emplace_back(label);
  dict_index_.emplace(dictionary_.back(), code);
  ints().push_back(code);
}

void Column::push_missing() {
  switch (type_) {
    case ColumnType::kContinuous:
      doubles().push_back(std::numeric_limits<double>::quiet_NaN());
      return;
    case ColumnType::kOrdinal:
      ints().push_back(kMissingOrdinal);
      return;
    case ColumnType::kNominal:
      ints().push_back(kMissingCode);
      return;
  }
}

std::span<const double> Column::continuous_values() const {
  util::require(type_ == ColumnType::kContinuous, "continuous_values on non-continuous column");
  return doubles();
}

std::span<const std::int32_t> Column::ordinal_values() const {
  util::require(type_ == ColumnType::kOrdinal, "ordinal_values on non-ordinal column");
  return ints();
}

std::span<const std::int32_t> Column::nominal_codes() const {
  util::require(type_ == ColumnType::kNominal, "nominal_codes on non-nominal column");
  return ints();
}

const std::vector<std::string>& Column::dictionary() const {
  util::require(type_ == ColumnType::kNominal, "dictionary on non-nominal column");
  return dictionary_;
}

std::string_view Column::label_of(std::int32_t code) const {
  util::require(type_ == ColumnType::kNominal, "label_of on non-nominal column");
  if (code == kMissingCode) return "?";
  util::require(code >= 0 && static_cast<std::size_t>(code) < dictionary_.size(),
                "nominal code out of range");
  return dictionary_[static_cast<std::size_t>(code)];
}

std::int32_t Column::code_of(std::string_view label) const noexcept {
  const auto it = dict_index_.find(std::string(label));
  return it == dict_index_.end() ? kMissingCode : it->second;
}

std::size_t Column::cardinality() const {
  util::require(type_ == ColumnType::kNominal, "cardinality on non-nominal column");
  return dictionary_.size();
}

double Column::as_double(std::size_t i) const {
  util::require(i < size(), "row index out of range");
  switch (type_) {
    case ColumnType::kContinuous:
      return doubles()[i];
    case ColumnType::kOrdinal: {
      const auto v = ints()[i];
      return v == kMissingOrdinal ? std::numeric_limits<double>::quiet_NaN()
                                  : static_cast<double>(v);
    }
    case ColumnType::kNominal: {
      const auto v = ints()[i];
      return v == kMissingCode ? std::numeric_limits<double>::quiet_NaN()
                               : static_cast<double>(v);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

bool Column::is_missing(std::size_t i) const {
  util::require(i < size(), "row index out of range");
  switch (type_) {
    case ColumnType::kContinuous:
      return std::isnan(doubles()[i]);
    case ColumnType::kOrdinal:
      return ints()[i] == kMissingOrdinal;
    case ColumnType::kNominal:
      return ints()[i] == kMissingCode;
  }
  return true;
}

std::string Column::cell_to_string(std::size_t i) const {
  if (is_missing(i)) return "";
  switch (type_) {
    case ColumnType::kContinuous:
      return util::format_double(doubles()[i], 6);
    case ColumnType::kOrdinal:
      return std::to_string(ints()[i]);
    case ColumnType::kNominal:
      return std::string(label_of(ints()[i]));
  }
  return "";
}

Column Column::take(std::span<const std::size_t> indices) const {
  Column out(type_);
  out.dictionary_ = dictionary_;
  out.dict_index_ = dict_index_;
  if (type_ == ColumnType::kContinuous) {
    auto& dst = out.doubles();
    dst.reserve(indices.size());
    const auto& src = doubles();
    for (const auto i : indices) {
      util::require(i < src.size(), "take index out of range");
      dst.push_back(src[i]);
    }
  } else {
    auto& dst = out.ints();
    dst.reserve(indices.size());
    const auto& src = ints();
    for (const auto i : indices) {
      util::require(i < src.size(), "take index out of range");
      dst.push_back(src[i]);
    }
  }
  return out;
}

}  // namespace rainshine::table
