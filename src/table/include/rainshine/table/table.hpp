// A small columnar dataframe.
//
// `Table` is the exchange format between the simulator (which emits a row
// per rack-period observation), the CART learner (which consumes feature
// columns) and the decision studies. It deliberately implements only what
// the analyses need: schema-checked column access, row filtering/selection,
// sorting and group-by aggregation.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rainshine/table/column.hpp"

namespace rainshine::table {

/// Named, equal-length columns. Value semantics.
class Table {
 public:
  Table() = default;

  /// Adds a column; all columns must have equal length. Throws on duplicate
  /// name or length mismatch with existing columns.
  void add_column(std::string name, Column column);

  [[nodiscard]] std::size_t num_rows() const noexcept { return num_rows_; }
  [[nodiscard]] std::size_t num_columns() const noexcept { return columns_.size(); }
  [[nodiscard]] bool has_column(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<std::string>& column_names() const noexcept {
    return names_;
  }

  /// Column by name; throws util::precondition_error if absent.
  [[nodiscard]] const Column& column(std::string_view name) const;
  [[nodiscard]] Column& column(std::string_view name);
  [[nodiscard]] const Column& column_at(std::size_t index) const;
  [[nodiscard]] const std::string& column_name(std::size_t index) const;

  /// New table with the rows at `indices` (in that order).
  [[nodiscard]] Table take(std::span<const std::size_t> indices) const;

  /// Row indices where `predicate(row)` holds.
  [[nodiscard]] std::vector<std::size_t> find_rows(
      const std::function<bool(std::size_t)>& predicate) const;

  /// New table with rows where `predicate(row)` holds.
  [[nodiscard]] Table filter(const std::function<bool(std::size_t)>& predicate) const;

  /// New table with only the named columns (schema projection).
  [[nodiscard]] Table select(std::span<const std::string> names) const;

  /// Row indices sorted ascending by the numeric view of `name`.
  [[nodiscard]] std::vector<std::size_t> sorted_indices(std::string_view name) const;

  /// Renders the first `max_rows` rows as an aligned text preview.
  [[nodiscard]] std::string preview(std::size_t max_rows = 10) const;

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;

  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const noexcept;
};

/// Incrementally builds a Table row by row against a fixed schema; used by
/// the simulator's observation emitters.
class TableBuilder {
 public:
  TableBuilder& add_continuous(std::string name);
  TableBuilder& add_ordinal(std::string name);
  TableBuilder& add_nominal(std::string name);

  /// Begins a new row; every column must then be set exactly once before the
  /// next begin_row()/finish(). Values may be set in any order.
  void begin_row();
  void set(std::string_view name, double value);
  void set(std::string_view name, std::int32_t value);
  void set(std::string_view name, std::string_view label);
  void set_missing(std::string_view name);

  /// Validates the final row and returns the table. The builder is consumed.
  [[nodiscard]] Table finish();

 private:
  struct Pending {
    std::string name;
    Column column;
    bool set_in_current_row = false;
  };
  std::vector<Pending> pending_;
  bool in_row_ = false;

  [[nodiscard]] Pending& pending_for(std::string_view name);
  void close_row();
};

}  // namespace rainshine::table
