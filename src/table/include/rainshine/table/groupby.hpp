// Group-by aggregation over tables.
//
// The paper's metrics are all "aggregate metric X at spatial granularity S
// and temporal granularity T" — i.e. group rows by one or more key columns
// and reduce a value column within each group. `group_by` produces the group
// index; `aggregate` reduces with named statistics.
#pragma once

#include <string>
#include <vector>

#include "rainshine/table/table.hpp"

namespace rainshine::table {

/// One group: its key rendered per key column, and its member row indices.
struct Group {
  std::vector<std::string> key;  ///< one rendered cell per key column
  std::vector<std::size_t> rows;
};

/// Partitions rows by the tuple of values in `key_columns`. Groups are
/// ordered by first appearance; rows with any missing key are grouped under
/// the missing rendering (""). Throws if a key column is absent.
[[nodiscard]] std::vector<Group> group_by(const Table& table,
                                          std::span<const std::string> key_columns);

enum class Reduction : std::uint8_t { kCount, kSum, kMean, kStddev, kMin, kMax, kP95 };

/// One aggregation request: reduce `value_column` with `reduction`, output
/// column named `output_name`.
struct Aggregation {
  std::string value_column;
  Reduction reduction = Reduction::kMean;
  std::string output_name;
};

/// Groups `table` by `key_columns` and applies each aggregation within each
/// group. The result has one row per group: the key columns (as nominal
/// re-renderings) followed by one continuous column per aggregation.
[[nodiscard]] Table aggregate(const Table& table,
                              std::span<const std::string> key_columns,
                              std::span<const Aggregation> aggregations);

}  // namespace rainshine::table
