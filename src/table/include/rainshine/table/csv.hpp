// CSV import/export for tables.
//
// RMA-style failure logs and sensor dumps arrive as CSV in the field; the
// library round-trips its tables through the same format so users can bring
// their own data to the analysis pipelines (or export simulator output to R
// for cross-checking against rpart).
//
// Field data is dirty (the paper's "cloudy" premise), so import is governed
// by an ingest::ErrorPolicy: kStrict dies on the first malformed record
// (the historical behavior and still the default), kQuarantine collects bad
// records into an ingest::IngestReport and keeps going, kRepair additionally
// coerces cells that fail their declared type to missing (recorded as
// repairs) before quarantining what remains. Ragged rows are quarantined
// under every recoverable policy — their field alignment is unknowable.
#pragma once

#include <iosfwd>
#include <string>

#include "rainshine/ingest/report.hpp"
#include "rainshine/table/table.hpp"

namespace rainshine::table {

/// Per-column type declaration for CSV import.
struct CsvSchemaEntry {
  std::string name;
  ColumnType type = ColumnType::kContinuous;
};

/// Import controls beyond the schema.
struct CsvReadOptions {
  ingest::ErrorPolicy policy = ingest::ErrorPolicy::kStrict;
};

/// Reads a header-first CSV. If `schema` is empty, types are inferred per
/// column: all-numeric integral -> ordinal, all-numeric -> continuous,
/// otherwise nominal; empty cells are missing. If a schema is given, its
/// names must match the header exactly and cells are parsed per the declared
/// type. Under kStrict any malformed record throws util::precondition_error
/// whose message carries the 1-based row (header = row 1) and, for cell
/// errors, the column name; under kQuarantine/kRepair malformed records are
/// recorded in `report` (if non-null) and skipped or fixed up instead.
/// A leading UTF-8 BOM and CR line endings are tolerated under all policies,
/// and quoted fields may span physical lines (RFC 4180 embedded newlines) —
/// whatever write_csv emits, read_csv takes back.
[[nodiscard]] Table read_csv(std::istream& in,
                             std::span<const CsvSchemaEntry> schema,
                             const CsvReadOptions& options,
                             ingest::IngestReport* report = nullptr);
[[nodiscard]] Table read_csv(std::istream& in,
                             std::span<const CsvSchemaEntry> schema = {});

/// Reads a CSV file from disk. Throws on I/O failure regardless of policy.
[[nodiscard]] Table read_csv_file(const std::string& path,
                                  std::span<const CsvSchemaEntry> schema,
                                  const CsvReadOptions& options,
                                  ingest::IngestReport* report = nullptr);
[[nodiscard]] Table read_csv_file(const std::string& path,
                                  std::span<const CsvSchemaEntry> schema = {});

/// Writes `table` as CSV with a header row. Cells containing commas, quotes
/// or newlines are quoted per RFC 4180.
void write_csv(const Table& table, std::ostream& out);
void write_csv_file(const Table& table, const std::string& path);

}  // namespace rainshine::table
