// CSV import/export for tables.
//
// RMA-style failure logs and sensor dumps arrive as CSV in the field; the
// library round-trips its tables through the same format so users can bring
// their own data to the analysis pipelines (or export simulator output to R
// for cross-checking against rpart).
#pragma once

#include <iosfwd>
#include <string>

#include "rainshine/table/table.hpp"

namespace rainshine::table {

/// Per-column type declaration for CSV import.
struct CsvSchemaEntry {
  std::string name;
  ColumnType type = ColumnType::kContinuous;
};

/// Reads a header-first CSV. If `schema` is empty, types are inferred per
/// column: all-numeric integral -> ordinal, all-numeric -> continuous,
/// otherwise nominal; empty cells are missing. If a schema is given, its
/// names must match the header exactly and cells are parsed per the declared
/// type (throws util::precondition_error on malformed cells).
[[nodiscard]] Table read_csv(std::istream& in,
                             std::span<const CsvSchemaEntry> schema = {});

/// Reads a CSV file from disk. Throws on I/O failure.
[[nodiscard]] Table read_csv_file(const std::string& path,
                                  std::span<const CsvSchemaEntry> schema = {});

/// Writes `table` as CSV with a header row. Cells containing commas, quotes
/// or newlines are quoted per RFC 4180.
void write_csv(const Table& table, std::ostream& out);
void write_csv_file(const Table& table, const std::string& path);

}  // namespace rainshine::table
