// Typed columns for the dataframe substrate.
//
// The paper's feature table (Table III) mixes continuous (temperature, RH),
// ordinal (day, week, month, year, age bucket) and nominal (SKU, workload,
// DC, rack, fault type) variables, and the CART implementation must treat
// each kind correctly. A Column is a dynamically typed, dictionary-encoding
// aware vector with a uniform numeric view:
//
//   * continuous  -> double values (NaN = missing)
//   * ordinal     -> int32 values with a meaningful order (-2^31 = missing)
//   * nominal     -> int32 dictionary codes, order meaningless (-1 = missing)
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

namespace rainshine::table {

enum class ColumnType : std::uint8_t { kContinuous, kOrdinal, kNominal };

[[nodiscard]] std::string_view to_string(ColumnType t) noexcept;

inline constexpr std::int32_t kMissingCode = -1;
inline constexpr std::int32_t kMissingOrdinal = std::numeric_limits<std::int32_t>::min();

/// A single typed column. Value semantics; cheap to move.
class Column {
 public:
  /// Empty continuous column.
  Column() : Column(ColumnType::kContinuous) {}
  explicit Column(ColumnType type);

  [[nodiscard]] static Column continuous(std::vector<double> values);
  [[nodiscard]] static Column ordinal(std::vector<std::int32_t> values);
  /// Nominal from string labels; builds the dictionary in first-seen order.
  [[nodiscard]] static Column nominal(std::span<const std::string> labels);
  /// Nominal from pre-encoded codes and an explicit dictionary.
  [[nodiscard]] static Column nominal(std::vector<std::int32_t> codes,
                                      std::vector<std::string> dictionary);

  [[nodiscard]] ColumnType type() const noexcept { return type_; }
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  // -- Appending ------------------------------------------------------------
  void push_continuous(double v);
  void push_ordinal(std::int32_t v);
  /// Appends a nominal label, growing the dictionary on first sight.
  void push_nominal(std::string_view label);
  void push_missing();

  // -- Typed access (throw util::precondition_error on type mismatch) -------
  [[nodiscard]] std::span<const double> continuous_values() const;
  [[nodiscard]] std::span<const std::int32_t> ordinal_values() const;
  [[nodiscard]] std::span<const std::int32_t> nominal_codes() const;
  [[nodiscard]] const std::vector<std::string>& dictionary() const;

  /// Label for a nominal code ("?" for missing).
  [[nodiscard]] std::string_view label_of(std::int32_t code) const;
  /// Code for a nominal label, or kMissingCode if absent.
  [[nodiscard]] std::int32_t code_of(std::string_view label) const noexcept;
  /// Number of distinct nominal categories (dictionary size).
  [[nodiscard]] std::size_t cardinality() const;

  // -- Uniform numeric view ---------------------------------------------------
  /// Row `i` as a double: value (continuous), level (ordinal) or dictionary
  /// code (nominal). NaN when missing. CART consumes columns through this.
  [[nodiscard]] double as_double(std::size_t i) const;
  [[nodiscard]] bool is_missing(std::size_t i) const;
  /// Human-readable cell rendering for reports/CSV.
  [[nodiscard]] std::string cell_to_string(std::size_t i) const;

  /// New column with only the rows in `indices` (same type/dictionary).
  [[nodiscard]] Column take(std::span<const std::size_t> indices) const;

 private:
  ColumnType type_;
  std::variant<std::vector<double>, std::vector<std::int32_t>> data_;
  std::vector<std::string> dictionary_;                       // nominal only
  std::unordered_map<std::string, std::int32_t> dict_index_;  // label -> code

  [[nodiscard]] std::vector<double>& doubles();
  [[nodiscard]] const std::vector<double>& doubles() const;
  [[nodiscard]] std::vector<std::int32_t>& ints();
  [[nodiscard]] const std::vector<std::int32_t>& ints() const;
};

}  // namespace rainshine::table
