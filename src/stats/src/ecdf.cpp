#include "rainshine/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "rainshine/util/check.hpp"

namespace rainshine::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  util::require(!sorted_.empty(), "Ecdf over empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  util::require(q >= 0.0 && q <= 1.0, "Ecdf quantile q outside [0,1]");
  if (q == 0.0) return sorted_.front();
  // Smallest index i with (i+1)/n >= q, i.e. i = ceil(q*n) - 1.
  const auto n = static_cast<double>(sorted_.size());
  const auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<double> Ecdf::evaluate(std::span<const double> points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const double p : points) out.push_back((*this)(p));
  return out;
}

}  // namespace rainshine::stats
