#include "rainshine/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "rainshine/stats/descriptive.hpp"
#include "rainshine/util/check.hpp"

namespace rainshine::stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  util::require(!sorted_.empty(), "Ecdf over empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  // Delegates to the shared inverse-ECDF estimator (R type 1) so the two
  // quantile implementations in the library cannot drift: it picks the
  // smallest sample value v with P(X <= v) >= q, with rounding handled so
  // quantile(operator()(v)) round-trips to v for every sample value.
  return quantile_sorted(sorted_, q, QuantileMethod::kInverseEcdf);
}

std::vector<double> Ecdf::evaluate(std::span<const double> points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const double p : points) out.push_back((*this)(p));
  return out;
}

}  // namespace rainshine::stats
