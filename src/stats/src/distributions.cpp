#include "rainshine/stats/distributions.hpp"

#include <cmath>
#include <numbers>

#include "rainshine/util/check.hpp"

namespace rainshine::stats {

double sample_normal(util::Rng& rng) noexcept {
  // Box-Muller; discard the second variate to keep the sampler stateless.
  double u1 = rng.uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double sample_normal(util::Rng& rng, double mu, double sigma) noexcept {
  return mu + sigma * sample_normal(rng);
}

double sample_exponential(util::Rng& rng, double lambda) {
  util::require(lambda > 0.0, "exponential rate must be positive");
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::uint64_t sample_poisson(util::Rng& rng, double lambda) {
  util::require(lambda >= 0.0, "Poisson mean must be non-negative");
  if (lambda == 0.0) return 0;
  if (lambda <= 64.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  const double x = sample_normal(rng, lambda, std::sqrt(lambda)) + 0.5;
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x);
}

double sample_weibull(util::Rng& rng, double shape, double scale) {
  util::require(shape > 0.0 && scale > 0.0, "Weibull shape/scale must be positive");
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double sample_lognormal(util::Rng& rng, double mu_log, double sigma_log) noexcept {
  return std::exp(sample_normal(rng, mu_log, sigma_log));
}

std::size_t sample_categorical(util::Rng& rng, std::span<const double> weights) {
  util::require(!weights.empty(), "categorical over empty weights");
  double total = 0.0;
  for (const double w : weights) {
    util::require(w >= 0.0, "categorical weights must be non-negative");
    total += w;
  }
  util::require(total > 0.0, "categorical weights must not all be zero");
  const double target = rng.uniform() * total;
  double cum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (target < cum) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall into the last bucket
}

double weibull_hazard(double t, double shape, double scale) {
  util::require(shape > 0.0 && scale > 0.0, "Weibull shape/scale must be positive");
  util::require(t >= 0.0, "hazard time must be non-negative");
  if (t == 0.0) {
    // h(0) is 0 for shape > 1, (1/scale) for shape == 1, +inf for shape < 1;
    // clamp the infant singularity to the value a hair after 0.
    if (shape < 1.0) t = 1e-6;
    else if (shape > 1.0) return 0.0;
  }
  return (shape / scale) * std::pow(t / scale, shape - 1.0);
}

double BathtubHazard::operator()(double t_months) const {
  util::require(t_months >= 0.0, "age must be non-negative");
  return infant_weight * weibull_hazard(t_months, infant_shape, infant_scale) +
         floor_rate +
         wearout_weight * weibull_hazard(t_months, wearout_shape, wearout_scale);
}

}  // namespace rainshine::stats
