#include "rainshine/stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "rainshine/stats/descriptive.hpp"
#include "rainshine/util/check.hpp"

namespace rainshine::stats {

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, util::Rng& rng,
                                std::size_t replicates, double level) {
  util::require(!sample.empty(), "bootstrap over empty sample");
  util::require(replicates > 0, "bootstrap needs at least one replicate");
  util::require(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");

  std::vector<double> resample(sample.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& v : resample) v = sample[rng.below(sample.size())];
    estimates.push_back(statistic(resample));
  }
  std::sort(estimates.begin(), estimates.end());

  const double alpha = 1.0 - level;
  ConfidenceInterval ci;
  ci.point = statistic(sample);
  ci.lo = quantile_sorted(estimates, alpha / 2.0);
  ci.hi = quantile_sorted(estimates, 1.0 - alpha / 2.0);
  ci.level = level;
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                                     std::size_t replicates, double level) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, rng, replicates,
      level);
}

}  // namespace rainshine::stats
