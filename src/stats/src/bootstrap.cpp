#include "rainshine/stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "rainshine/stats/descriptive.hpp"
#include "rainshine/util/check.hpp"
#include "rainshine/util/parallel.hpp"

namespace rainshine::stats {

namespace {
/// Replicates per derived RNG stream. Fixed — NOT tied to the thread count —
/// so the estimate vector is identical however chunks are scheduled.
constexpr std::size_t kReplicatesPerChunk = 16;
}  // namespace

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, util::Rng& rng,
                                std::size_t replicates, double level) {
  util::require(!sample.empty(), "bootstrap over empty sample");
  util::require(replicates > 0, "bootstrap needs at least one replicate");
  util::require(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");

  // The alpha/2 tail percentile only moves off the sample extremes once
  // (alpha/2)·(replicates−1) >= 1; below that the "interval" is just the
  // min/max of a handful of draws masquerading as a CI. Refuse with a typed
  // error (before consuming any randomness) rather than hand back a number
  // that looks authoritative.
  const double alpha = 1.0 - level;
  const auto min_replicates =
      static_cast<std::size_t>(std::ceil(2.0 / alpha)) + 1;
  if (replicates < min_replicates) {
    throw bootstrap_error(
        "bootstrap_ci: " + std::to_string(replicates) +
        " replicates cannot resolve the " + std::to_string(alpha / 2.0) +
        " tail percentile; need at least " + std::to_string(min_replicates) +
        " at confidence level " + std::to_string(level));
  }

  // One draw keys this call's replicate streams: successive calls with the
  // same generator stay independent while each chunk's stream depends only
  // on (base, chunk_index), never on scheduling.
  const util::Rng base = rng.split(rng());
  const std::size_t num_chunks =
      (replicates + kReplicatesPerChunk - 1) / kReplicatesPerChunk;
  std::vector<double> estimates(replicates);
  util::parallel_for(num_chunks, 1, [&](std::size_t begin, std::size_t end) {
    std::vector<double> resample(sample.size());
    for (std::size_t c = begin; c < end; ++c) {
      util::Rng chunk_rng = base.split(c);
      const std::size_t last =
          std::min(replicates, (c + 1) * kReplicatesPerChunk);
      for (std::size_t r = c * kReplicatesPerChunk; r < last; ++r) {
        for (auto& v : resample) v = sample[chunk_rng.below(sample.size())];
        estimates[r] = statistic(resample);
      }
    }
  });
  // NaN/Inf estimates would make the sort below meaningless (NaN breaks
  // strict weak ordering — lo > hi becomes possible) — refuse instead.
  std::size_t non_finite = 0;
  for (const double e : estimates) {
    if (!std::isfinite(e)) ++non_finite;
  }
  if (non_finite > 0) {
    throw bootstrap_error("bootstrap_ci: " + std::to_string(non_finite) +
                          " of " + std::to_string(replicates) +
                          " replicate estimates are non-finite; percentile "
                          "interval is undefined");
  }
  std::sort(estimates.begin(), estimates.end());

  ConfidenceInterval ci;
  ci.point = statistic(sample);
  ci.lo = quantile_sorted(estimates, alpha / 2.0);
  ci.hi = quantile_sorted(estimates, 1.0 - alpha / 2.0);
  ci.level = level;
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                                     std::size_t replicates, double level) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, rng, replicates,
      level);
}

}  // namespace rainshine::stats
