#include "rainshine/stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "rainshine/stats/descriptive.hpp"
#include "rainshine/util/check.hpp"
#include "rainshine/util/parallel.hpp"

namespace rainshine::stats {

namespace {
/// Replicates per derived RNG stream. Fixed — NOT tied to the thread count —
/// so the estimate vector is identical however chunks are scheduled.
constexpr std::size_t kReplicatesPerChunk = 16;
}  // namespace

ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                const Statistic& statistic, util::Rng& rng,
                                std::size_t replicates, double level) {
  util::require(!sample.empty(), "bootstrap over empty sample");
  util::require(replicates > 0, "bootstrap needs at least one replicate");
  util::require(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");

  // One draw keys this call's replicate streams: successive calls with the
  // same generator stay independent while each chunk's stream depends only
  // on (base, chunk_index), never on scheduling.
  const util::Rng base = rng.split(rng());
  const std::size_t num_chunks =
      (replicates + kReplicatesPerChunk - 1) / kReplicatesPerChunk;
  std::vector<double> estimates(replicates);
  util::parallel_for(num_chunks, 1, [&](std::size_t begin, std::size_t end) {
    std::vector<double> resample(sample.size());
    for (std::size_t c = begin; c < end; ++c) {
      util::Rng chunk_rng = base.split(c);
      const std::size_t last =
          std::min(replicates, (c + 1) * kReplicatesPerChunk);
      for (std::size_t r = c * kReplicatesPerChunk; r < last; ++r) {
        for (auto& v : resample) v = sample[chunk_rng.below(sample.size())];
        estimates[r] = statistic(resample);
      }
    }
  });
  std::sort(estimates.begin(), estimates.end());

  const double alpha = 1.0 - level;
  ConfidenceInterval ci;
  ci.point = statistic(sample);
  ci.lo = quantile_sorted(estimates, alpha / 2.0);
  ci.hi = quantile_sorted(estimates, 1.0 - alpha / 2.0);
  ci.level = level;
  return ci;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, util::Rng& rng,
                                     std::size_t replicates, double level) {
  return bootstrap_ci(
      sample, [](std::span<const double> s) { return mean(s); }, rng, replicates,
      level);
}

}  // namespace rainshine::stats
