#include "rainshine/stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "rainshine/util/check.hpp"

namespace rainshine::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  util::require(x.size() == y.size(), "pearson: length mismatch");
  util::require(x.size() >= 2, "pearson: need at least 2 observations");
  const auto n = static_cast<double>(x.size());
  double mx = 0.0;
  double my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> out(values.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && values[order[j + 1]] == values[order[i]]) ++j;
    // Average the 1-based ranks i+1 .. j+1 across the tie group.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[order[k]] = avg;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  util::require(x.size() == y.size(), "spearman: length mismatch");
  const std::vector<double> rx = ranks(x);
  const std::vector<double> ry = ranks(y);
  return pearson(rx, ry);
}

}  // namespace rainshine::stats
