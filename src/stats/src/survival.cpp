#include "rainshine/stats/survival.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rainshine/util/check.hpp"

namespace rainshine::stats {

std::vector<KmPoint> kaplan_meier(std::span<const SurvivalObservation> observations) {
  util::require(!observations.empty(), "Kaplan-Meier over empty sample");
  std::vector<SurvivalObservation> sorted(observations.begin(), observations.end());
  for (const auto& o : sorted) {
    util::require(o.time >= 0.0, "survival times must be non-negative");
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const SurvivalObservation& a, const SurvivalObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.event > b.event;  // events before censorings at ties
            });

  std::vector<KmPoint> curve;
  double survival = 1.0;
  std::size_t at_risk = sorted.size();
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double t = sorted[i].time;
    std::size_t events = 0;
    std::size_t leaving = 0;
    while (i < sorted.size() && sorted[i].time == t) {
      if (sorted[i].event) ++events;
      ++leaving;
      ++i;
    }
    if (events > 0) {
      survival *= 1.0 - static_cast<double>(events) / static_cast<double>(at_risk);
      curve.push_back({t, survival, at_risk, events});
    }
    at_risk -= leaving;
  }
  return curve;
}

double survival_at(std::span<const KmPoint> curve, double t) noexcept {
  double s = 1.0;
  for (const KmPoint& p : curve) {
    if (p.time > t) break;
    s = p.survival;
  }
  return s;
}

double median_survival(std::span<const KmPoint> curve) noexcept {
  for (const KmPoint& p : curve) {
    if (p.survival <= 0.5) return p.time;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double restricted_mean_survival(std::span<const KmPoint> curve, double horizon) {
  util::require(horizon > 0.0, "horizon must be positive");
  double area = 0.0;
  double prev_time = 0.0;
  double prev_survival = 1.0;
  for (const KmPoint& p : curve) {
    if (p.time >= horizon) break;
    area += prev_survival * (p.time - prev_time);
    prev_time = p.time;
    prev_survival = p.survival;
  }
  area += prev_survival * (horizon - prev_time);
  return area;
}

double event_rate(std::span<const SurvivalObservation> observations) {
  util::require(!observations.empty(), "event_rate over empty sample");
  double time_at_risk = 0.0;
  double events = 0.0;
  for (const auto& o : observations) {
    util::require(o.time >= 0.0, "survival times must be non-negative");
    time_at_risk += o.time;
    events += o.event ? 1.0 : 0.0;
  }
  util::require(time_at_risk > 0.0, "no time at risk");
  return events / time_at_risk;
}

}  // namespace rainshine::stats
