#include "rainshine/stats/histogram.hpp"

#include <algorithm>

#include "rainshine/util/check.hpp"
#include "rainshine/util/strings.hpp"

namespace rainshine::stats {

namespace {

std::string edge_label(double v) {
  // Render integral edges without a decimal point ("70" not "70.0").
  if (v == static_cast<double>(static_cast<long long>(v))) {
    return std::to_string(static_cast<long long>(v));
  }
  return util::format_double(v, 1);
}

}  // namespace

Binner::Binner(std::vector<double> edges, bool open_ended)
    : edges_(std::move(edges)), open_ended_(open_ended) {
  util::require(!edges_.empty(), "Binner needs at least one edge");
  util::require(std::is_sorted(edges_.begin(), edges_.end()) &&
                    std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
                "Binner edges must be strictly increasing");
  if (!open_ended_) {
    util::require(edges_.size() >= 2, "closed Binner needs at least two edges");
  }
}

std::size_t Binner::num_bins() const noexcept {
  // Closed: N edges delimit N-1 intervals. Open-ended: plus "<first" and ">=last".
  return open_ended_ ? edges_.size() + 1 : edges_.size() - 1;
}

std::size_t Binner::bin_of(double value) const noexcept {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  if (open_ended_) return idx;  // 0 = below first edge, edges_.size() = at/above last
  if (idx == 0) return 0;
  return std::min(idx - 1, edges_.size() - 2);
}

std::string Binner::label(std::size_t bin) const {
  util::require(bin < num_bins(), "Binner::label bin out of range");
  if (open_ended_) {
    if (bin == 0) return "<" + edge_label(edges_.front());
    if (bin == edges_.size()) return ">" + edge_label(edges_.back());
    return edge_label(edges_[bin - 1]) + "-" + edge_label(edges_[bin]);
  }
  return edge_label(edges_[bin]) + "-" + edge_label(edges_[bin + 1]);
}

Binner Binner::equal_width(double lo, double hi, std::size_t count) {
  util::require(hi > lo, "equal_width needs hi > lo");
  util::require(count >= 1, "equal_width needs at least one bin");
  std::vector<double> edges(count + 1);
  for (std::size_t i = 0; i <= count; ++i) {
    edges[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(count);
  }
  return Binner(std::move(edges), /*open_ended=*/false);
}

BinnedStats::BinnedStats(Binner binner)
    : binner_(std::move(binner)), accs_(binner_.num_bins()) {}

void BinnedStats::add(double key, double metric) {
  accs_[binner_.bin_of(key)].add(metric);
}

std::vector<BinnedRow> BinnedStats::rows() const {
  std::vector<BinnedRow> out;
  out.reserve(accs_.size());
  for (std::size_t i = 0; i < accs_.size(); ++i) {
    out.push_back({binner_.label(i), accs_[i].count(), accs_[i].mean(),
                   accs_[i].sample_stddev()});
  }
  return out;
}

CategoricalStats::CategoricalStats(std::vector<std::string> labels)
    : labels_(std::move(labels)), accs_(labels_.size()) {
  util::require(!labels_.empty(), "CategoricalStats needs at least one label");
}

void CategoricalStats::add(std::size_t key, double metric) {
  util::require(key < accs_.size(), "CategoricalStats key out of range");
  accs_[key].add(metric);
}

std::vector<BinnedRow> CategoricalStats::rows() const {
  std::vector<BinnedRow> out;
  out.reserve(accs_.size());
  for (std::size_t i = 0; i < accs_.size(); ++i) {
    out.push_back({labels_[i], accs_[i].count(), accs_[i].mean(),
                   accs_[i].sample_stddev()});
  }
  return out;
}

}  // namespace rainshine::stats
