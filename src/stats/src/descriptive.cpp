#include "rainshine/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rainshine/util/check.hpp"

namespace rainshine::stats {

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }
double Accumulator::sample_stddev() const noexcept { return std::sqrt(sample_variance()); }

double mean(std::span<const double> values) noexcept {
  Accumulator acc;
  for (const double v : values) acc.add(v);
  return acc.mean();
}

double sample_stddev(std::span<const double> values) noexcept {
  Accumulator acc;
  for (const double v : values) acc.add(v);
  return acc.sample_stddev();
}

double quantile_sorted(std::span<const double> sorted, double q) {
  return quantile_sorted(sorted, q, QuantileMethod::kLinearInterp);
}

double quantile_sorted(std::span<const double> sorted, double q,
                       QuantileMethod method) {
  util::require(!sorted.empty(), "quantile of empty sample");
  util::require(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  if (sorted.size() == 1) return sorted[0];

  if (method == QuantileMethod::kInverseEcdf) {
    // Smallest index i with (i+1)/n >= q, i.e. i = ceil(q*n) - 1 — but q*n
    // in floating point can round a hair ABOVE the exact product (e.g.
    // q = 0.29, n = 100 → 29.000000000000004), which would push ceil one
    // index too high and break quantile(cdf(v)) == v. A downward relative
    // nudge of a few ulps absorbs that rounding; for q genuinely between
    // grid points the nudge is far too small to change the bucket.
    if (q == 0.0) return sorted.front();
    const double scaled = q * static_cast<double>(sorted.size()) *
                          (1.0 - 8.0 * std::numeric_limits<double>::epsilon());
    if (scaled <= 1.0) return sorted.front();
    const auto idx = static_cast<std::size_t>(std::ceil(scaled)) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
  }

  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  Accumulator acc;
  for (const double v : values) acc.add(v);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.sample_stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  return s;
}

std::vector<double> normalize_to_max(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  const auto it = std::max_element(out.begin(), out.end());
  if (it == out.end() || *it <= 0.0) return out;
  const double peak = *it;
  for (double& v : out) v /= peak;
  return out;
}

}  // namespace rainshine::stats
