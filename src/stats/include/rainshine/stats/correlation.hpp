// Correlation measures used by the single-factor baselines and by the
// simulator's self-checks (e.g. verifying planted factor-failure
// correlations survive generation).
#pragma once

#include <span>
#include <vector>

namespace rainshine::stats {

/// Pearson product-moment correlation of two equal-length samples.
/// Returns 0 when either sample has zero variance. Throws on length
/// mismatch or fewer than 2 observations.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over mid-ranks; ties averaged).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// Mid-ranks of a sample (1-based; ties share the average rank).
[[nodiscard]] std::vector<double> ranks(std::span<const double> values);

}  // namespace rainshine::stats
