// Binned aggregation.
//
// Figures 3-9 and 16-17 of the paper are all "mean (and sd) of failure rate
// by bucket of some factor" plots. `Binner` maps a continuous value to a
// bucket; `BinnedStats` accumulates a metric per bucket and reports labelled
// mean/sd rows ready for printing.
#pragma once

#include <string>
#include <vector>

#include "rainshine/stats/descriptive.hpp"

namespace rainshine::stats {

/// Maps continuous values into labelled, contiguous half-open intervals
/// [e0,e1), [e1,e2), ... with open-ended "<e0" and ">=eN" catch-alls
/// optionally enabled. Value type.
class Binner {
 public:
  /// Interior edges must be strictly increasing and non-empty. With
  /// `open_ended`, values below the first / at-or-above the last edge fall
  /// into dedicated "<lo" / ">hi"-style buckets (the paper's "<20", ">70"
  /// humidity buckets in Fig. 5); otherwise such values clamp to the
  /// first/last interval.
  Binner(std::vector<double> edges, bool open_ended);

  [[nodiscard]] std::size_t num_bins() const noexcept;
  [[nodiscard]] std::size_t bin_of(double value) const noexcept;
  [[nodiscard]] std::string label(std::size_t bin) const;

  /// Convenience: equal-width bins across [lo, hi].
  [[nodiscard]] static Binner equal_width(double lo, double hi, std::size_t count);

 private:
  std::vector<double> edges_;
  bool open_ended_;
};

/// One output row of a binned-statistics table.
struct BinnedRow {
  std::string label;
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Accumulates (bin key, metric value) pairs and emits a row per bin.
class BinnedStats {
 public:
  explicit BinnedStats(Binner binner);

  void add(double key, double metric);
  [[nodiscard]] std::vector<BinnedRow> rows() const;
  [[nodiscard]] const Binner& binner() const noexcept { return binner_; }

 private:
  Binner binner_;
  std::vector<Accumulator> accs_;
};

/// Same idea keyed by a pre-labelled category (workload, SKU, weekday...).
class CategoricalStats {
 public:
  /// Fixes the category set and row order up front.
  explicit CategoricalStats(std::vector<std::string> labels);

  /// Adds an observation for category index `key` (must be < labels.size()).
  void add(std::size_t key, double metric);
  [[nodiscard]] std::vector<BinnedRow> rows() const;

 private:
  std::vector<std::string> labels_;
  std::vector<Accumulator> accs_;
};

}  // namespace rainshine::stats
