// Descriptive statistics: online accumulators, quantiles, summaries.
//
// Every figure in the paper reports means with standard deviations of a
// failure metric over some grouping; `Accumulator` (Welford) and `Summary`
// are the workhorses for that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rainshine::stats {

/// Numerically stable online mean/variance accumulator (Welford's method).
/// Value type; combine two with `merge` (Chan et al. parallel formula).
class Accumulator {
 public:
  constexpr Accumulator() noexcept = default;

  constexpr void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator's observations into this one.
  constexpr void merge(const Accumulator& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    mean_ = (n1 * mean_ + n2 * other.mean_) / total;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    sum_ += other.sum_;
  }

  [[nodiscard]] constexpr std::size_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr double sum() const noexcept { return sum_; }
  [[nodiscard]] constexpr double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance (divide by n); 0 for fewer than 2 observations.
  [[nodiscard]] constexpr double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Sample variance (divide by n-1); 0 for fewer than 2 observations.
  [[nodiscard]] constexpr double sample_variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  [[nodiscard]] constexpr double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] constexpr double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Summarizes `values` (empty input yields a zeroed Summary).
[[nodiscard]] Summary summarize(std::span<const double> values);

[[nodiscard]] double mean(std::span<const double> values) noexcept;
[[nodiscard]] double sample_stddev(std::span<const double> values) noexcept;

/// Which estimator a quantile call uses. The library has exactly two, and
/// both live here so their edge cases stay reconciled in one place:
///
///   * kLinearInterp — R type 7 (h = q·(n−1), interpolate between floor and
///     ceil). Smooth; the default for summaries and bootstrap percentiles.
///   * kInverseEcdf — R type 1: the smallest SAMPLE value v with
///     P(X ≤ v) ≥ q. Always returns an observed value; what Ecdf::quantile
///     uses for spare-capacity provisioning (you can't provision 2.4 spares).
///
/// The two agree exactly at q = 0 (minimum), q = 1 (maximum), on
/// single-element samples, and on constant samples; between sample points
/// kLinearInterp interpolates while kInverseEcdf steps up to the next
/// observed value.
enum class QuantileMethod : std::uint8_t {
  kLinearInterp,  ///< R type 7 (continuous)
  kInverseEcdf,   ///< R type 1 (left-continuous inverse of the ECDF)
};

/// Linear-interpolation quantile (R type 7) of UNSORTED data, q in [0, 1].
/// Throws util::precondition_error on empty input or q outside [0, 1].
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Quantile of data the caller guarantees is ascending-sorted.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Same, with an explicit estimator. kInverseEcdf is robust to the
/// floating-point wobble in q·n: a q that equals k/n up to rounding selects
/// index k−1 exactly, so Ecdf round-trips quantile(cdf(v)) == v for every
/// sample value v (the naive ceil(q·n)−1 could land one index high).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q,
                                     QuantileMethod method);

/// Normalizes values to their maximum (the paper normalizes every reported
/// metric to its peak — see §V footnote 2). All-zero input is returned
/// unchanged.
[[nodiscard]] std::vector<double> normalize_to_max(std::span<const double> values);

}  // namespace rainshine::stats
