// Sampling distributions and hazard curves for the fleet simulator.
//
// The simulator draws failure events from per-device Bernoulli/Poisson
// processes whose rates are shaped by a multi-factor hazard model; device
// lifetimes follow Weibull "bathtub" components; repair times are lognormal.
// All samplers take a util::Rng so output is deterministic per stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rainshine/util/rng.hpp"

namespace rainshine::stats {

/// Standard normal draw (Box-Muller, one value per call).
[[nodiscard]] double sample_normal(util::Rng& rng) noexcept;

/// Normal with mean mu and standard deviation sigma (sigma >= 0).
[[nodiscard]] double sample_normal(util::Rng& rng, double mu, double sigma) noexcept;

/// Exponential with rate lambda > 0. Throws on non-positive rate.
[[nodiscard]] double sample_exponential(util::Rng& rng, double lambda);

/// Poisson with mean lambda >= 0. Inversion for small lambda, normal
/// approximation (rounded, clamped at 0) for lambda > 64 — adequate for
/// simulation-scale counts. Throws on negative lambda.
[[nodiscard]] std::uint64_t sample_poisson(util::Rng& rng, double lambda);

/// Weibull with shape k > 0, scale s > 0.
[[nodiscard]] double sample_weibull(util::Rng& rng, double shape, double scale);

/// Lognormal: exp(Normal(mu_log, sigma_log)).
[[nodiscard]] double sample_lognormal(util::Rng& rng, double mu_log, double sigma_log) noexcept;

/// Draws an index from unnormalized non-negative weights (at least one must
/// be positive). Throws otherwise.
[[nodiscard]] std::size_t sample_categorical(util::Rng& rng, std::span<const double> weights);

/// Weibull hazard function h(t) = (k/s) * (t/s)^(k-1), t >= 0.
[[nodiscard]] double weibull_hazard(double t, double shape, double scale);

/// Bathtub hazard curve: infant-mortality Weibull (shape < 1) + constant
/// useful-life floor + wear-out Weibull (shape > 1). The paper's age data
/// (Fig. 9) shows the front edge of this curve — elevated failures in young
/// equipment — and its Q1 analysis cites "very old or very young require
/// more spares".
struct BathtubHazard {
  double infant_scale = 6.0;    ///< months; controls how fast infant risk decays
  double infant_shape = 0.5;    ///< < 1: decreasing hazard
  double infant_weight = 1.0;   ///< multiplier on the infant component
  double floor_rate = 0.1;      ///< constant useful-life hazard
  double wearout_scale = 60.0;  ///< months; onset of wear-out
  double wearout_shape = 4.0;   ///< > 1: increasing hazard
  double wearout_weight = 1.0;

  /// Hazard at age t (same time unit as the scales; we use months).
  [[nodiscard]] double operator()(double t_months) const;
};

/// Fisher-Yates shuffle in place.
template <typename T>
void shuffle(util::Rng& rng, std::vector<T>& values) noexcept {
  for (std::size_t i = values.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.below(i));
    using std::swap;
    swap(values[i - 1], values[j]);
  }
}

}  // namespace rainshine::stats
