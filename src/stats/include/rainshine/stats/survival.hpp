// Survival analysis primitives.
//
// Reliability field studies summarize "when do things fail" with survival
// curves and hazard summaries (the paper's §V framing of what/when/why, and
// its bathtub discussion around Fig. 9). The Kaplan-Meier estimator handles
// the right-censoring inherent in a fixed observation window: most devices
// never fail before the study ends, and ignoring them biases lifetime
// estimates badly.
#pragma once

#include <span>
#include <vector>

namespace rainshine::stats {

/// One subject's observation: time on test and whether the event (failure)
/// was observed or the subject was censored at that time.
struct SurvivalObservation {
  double time = 0.0;
  bool event = false;  ///< true = failure observed at `time`; false = censored
};

/// One step of the Kaplan-Meier curve.
struct KmPoint {
  double time = 0.0;        ///< event time
  double survival = 1.0;    ///< S(t) just after this time
  std::size_t at_risk = 0;  ///< subjects at risk just before this time
  std::size_t events = 0;   ///< failures at this time
};

/// Kaplan-Meier product-limit estimate over possibly-censored observations.
/// Returns one point per distinct event time, in increasing time order.
/// Throws on empty input or negative times.
[[nodiscard]] std::vector<KmPoint> kaplan_meier(
    std::span<const SurvivalObservation> observations);

/// S(t) from a fitted curve (step function; 1.0 before the first event).
[[nodiscard]] double survival_at(std::span<const KmPoint> curve, double t) noexcept;

/// Median survival time: the first event time where S(t) <= 0.5, or NaN if
/// the curve never reaches 0.5 (heavy censoring).
[[nodiscard]] double median_survival(std::span<const KmPoint> curve) noexcept;

/// Restricted mean survival time: the area under S(t) up to `horizon` —
/// the expected failure-free time within the window, robust under censoring.
[[nodiscard]] double restricted_mean_survival(std::span<const KmPoint> curve,
                                              double horizon);

/// Simple exponential-assumption rate estimate: events / total time at risk
/// (failures per unit time). The classical "1/MTBF" headline number; valid
/// when the hazard is roughly constant.
[[nodiscard]] double event_rate(std::span<const SurvivalObservation> observations);

}  // namespace rainshine::stats
