// Empirical cumulative distribution functions.
//
// Spare-capacity provisioning (paper §VI Q1, Figs. 1/10/11/12) works from the
// CDF of the concurrent-failure metric µ: the spares needed for an
// availability SLA of p are the (p)-quantile of that distribution. `Ecdf`
// provides both directions — P(X <= x) and quantiles — over a frozen sample.
#pragma once

#include <span>
#include <vector>

namespace rainshine::stats {

/// Immutable empirical CDF over a sample.
class Ecdf {
 public:
  /// Builds from an unsorted sample. Throws on empty input.
  explicit Ecdf(std::span<const double> sample);

  /// P(X <= x) under the empirical distribution.
  [[nodiscard]] double operator()(double x) const noexcept;

  /// Smallest sample value v with P(X <= v) >= q, q in [0, 1]. This is the
  /// provisioning quantile: the value that covers fraction q of observed
  /// periods. Throws if q outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// The sorted sample (ascending), e.g. for plotting CDF curves.
  [[nodiscard]] std::span<const double> sorted_sample() const noexcept { return sorted_; }

  /// Evaluates the CDF at `points`, returning matching probabilities.
  [[nodiscard]] std::vector<double> evaluate(std::span<const double> points) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace rainshine::stats
