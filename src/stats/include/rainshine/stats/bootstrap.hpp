// Bootstrap confidence intervals.
//
// The paper reports error bars on every per-group failure-rate estimate and
// argues from variance reductions (e.g. Q2's "up to 50% drop in variation").
// Percentile-bootstrap CIs give our reproduced figures comparable error bars
// without distributional assumptions.
#pragma once

#include <functional>
#include <span>
#include <stdexcept>

#include "rainshine/util/rng.hpp"

namespace rainshine::stats {

/// The bootstrap could not produce a statistically meaningful interval:
/// either the replicate budget cannot resolve the requested tail percentile,
/// or the statistic returned non-finite estimates (whose percentiles are
/// undefined — sorting NaNs is not even a valid ordering). Distinct from
/// util::precondition_error: the arguments are individually valid, the
/// *combination* (or the data) defeats the method.
class bootstrap_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
};

/// Statistic evaluated over a resampled dataset. Replicates run on the
/// shared thread pool (util/parallel.hpp), so the callable must be pure /
/// safe to invoke concurrently — every statistic of a fixed sample is.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap: resamples `sample` with replacement `replicates`
/// times and returns the [alpha/2, 1-alpha/2] percentile interval of the
/// statistic, where alpha = 1 - level. Throws util::precondition_error on
/// empty sample, level outside (0,1), or zero replicates; throws
/// bootstrap_error when replicates < 2/alpha + 1 (too few to resolve the
/// alpha/2 tail — at the default level 0.95 that means at least 41) or when
/// any replicate's estimate is non-finite. An interval that is returned
/// always satisfies lo <= hi; degenerate inputs (single-element or constant
/// samples) yield the well-defined zero-width interval [v, v].
///
/// Replicates are processed in fixed-size chunks, each drawing from its own
/// RNG stream derived from (one draw of `rng`, chunk_index); the estimates
/// are therefore bit-identical at any thread count, and successive calls
/// with the same generator still produce independent intervals (the keying
/// draw advances `rng` exactly once per call).
[[nodiscard]] ConfidenceInterval bootstrap_ci(std::span<const double> sample,
                                              const Statistic& statistic,
                                              util::Rng& rng,
                                              std::size_t replicates = 1000,
                                              double level = 0.95);

/// Convenience: bootstrap CI of the mean.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                                   util::Rng& rng,
                                                   std::size_t replicates = 1000,
                                                   double level = 0.95);

}  // namespace rainshine::stats
