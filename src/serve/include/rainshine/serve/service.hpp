// PredictionService: bounded admission, micro-batched scoring.
//
// Scoring traffic arrives as many small row groups (a rack's latest
// telemetry, one experiment arm's day) while the forest prefers large
// batches — Forest::predict fans rows out across the util::parallel pool, so
// per-request overhead amortizes with batch size. The service sits between:
//
//   submit() ──► bounded admission queue ──► dispatcher thread ──► pool
//                (backpressure: blocks or      (flushes a batch when
//                 rejects when max_queue_rows   pending rows reach
//                 of rows are pending)          max_batch_rows, or the
//                                               oldest request has waited
//                                               max_batch_delay)
//
// Determinism: a request's rows are scored by Forest::predict over the
// request's own Dataset, which is bit-identical at any thread count (see
// util/parallel.hpp) and independent of which batch the request landed in —
// so service output is byte-identical to calling Forest::predict serially,
// no matter how requests interleave, batch, or how wide the pool is.
//
// Failure isolation: a request whose rows violate the model's schema throws
// in the submitting thread (never poisoning the queue); a scoring error
// inside the dispatcher lands in that request's future alone.
//
// Counters: per-service (= per-model) admitted/rejected/completed counts,
// rows, batches by flush cause, queue depth high-water mark and end-to-end
// latency live in ServiceStats — the serving-side analogue of the λ/µ
// counters core::metrics keeps for failures — and are readable at any time
// via stats(). The same events also publish to the process-wide
// obs::registry() under "serve.*" (counters mirroring ServiceStats, a
// serve.queue_depth_rows gauge, and serve.latency_us / serve.batch_rows
// histograms) so a run's metrics sidecar includes serving behaviour without
// holding a PredictionService handle. Counter ticks and histogram observes
// for a request happen in one critical section before its future fulfills,
// so obs snapshots taken after .get() are cross-metric consistent
// (latency histogram count == serve.requests_completed).
//
// Shutdown contract: a request whose submit() began before destruction is
// either scored by the drain or its future fails with service_stopped_error
// — it is never abandoned (no broken_promise). The destructor waits for
// every producer blocked inside submit() to leave before tearing down.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "rainshine/obs/metrics.hpp"
#include "rainshine/serve/artifact.hpp"
#include "rainshine/serve/registry.hpp"
#include "rainshine/table/table.hpp"

namespace rainshine::serve {

/// A request hit the service during shutdown: the future of a submit() that
/// raced destruction carries this instead of a result. Distinct from
/// util::precondition_error (caller bug) — racing a shutdown is a normal
/// lifecycle event the caller may want to retry elsewhere.
class service_stopped_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A request's deadline expired before it was scored — on arrival (refused
/// before enqueueing, never admitted) or while it waited in the queue
/// (admitted but failed instead of scored). Either way the caller's latency
/// budget is already spent; scoring it would waste a batch slot on an answer
/// nobody is waiting for. The network front-end maps this to 504.
class deadline_exceeded_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Absolute per-request deadline; nullopt = no deadline (the default).
using Deadline = std::optional<std::chrono::steady_clock::time_point>;

struct ServiceConfig {
  /// Flush the pending batch once this many rows are queued.
  std::size_t max_batch_rows = 256;
  /// Admission bound: submit() blocks (try_submit() refuses) while this many
  /// rows are already pending. An oversized single request is admitted when
  /// the queue is empty, so it can never deadlock.
  std::size_t max_queue_rows = 4096;
  /// Flush the pending batch once its oldest request has waited this long,
  /// even if it is below max_batch_rows.
  std::chrono::microseconds max_batch_delay{2000};
  /// Which inference engine scores batches: the flat compiled layout
  /// (default) or the pointer-walking reference. Both are bit-identical;
  /// kWalker exists as the golden fallback (--scorer=walker).
  cart::Scorer scorer = cart::Scorer::kFlat;
};

/// Monotonic counters snapshot. Latencies are measured enqueue → scored, in
/// microseconds. A request's counters are published before its future
/// fulfills, so stats() taken after a .get() always includes that request.
struct ServiceStats {
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_rejected = 0;  ///< try_submit refusals (backpressure)
  std::uint64_t requests_stopped = 0;   ///< raced shutdown; service_stopped_error
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;    ///< scoring threw; error in the future
  /// Deadline expired before scoring (on arrival or in the queue); future
  /// fails with deadline_exceeded_error. Never overlaps requests_completed,
  /// so `latency_us count == requests_completed` stays an invariant.
  std::uint64_t requests_deadline_exceeded = 0;
  std::uint64_t oversize_admitted = 0;  ///< single request > max_queue_rows
  std::uint64_t rows_scored = 0;
  std::uint64_t batches_flushed = 0;
  std::uint64_t full_flushes = 0;       ///< batch reached max_batch_rows
  std::uint64_t deadline_flushes = 0;   ///< flushed by max_batch_delay / drain
  std::uint64_t queue_depth_rows = 0;   ///< pending right now
  std::uint64_t peak_queue_rows = 0;    ///< high-water mark
  std::uint64_t blocked_submits = 0;    ///< producers parked in submit() now
  std::uint64_t total_latency_us = 0;
  std::uint64_t max_latency_us = 0;

  [[nodiscard]] double mean_latency_us() const noexcept {
    return requests_completed == 0
               ? 0.0
               : static_cast<double>(total_latency_us) /
                     static_cast<double>(requests_completed);
  }

  /// One-line human summary for logs and CLI --stats output.
  [[nodiscard]] std::string summary() const;
};

class PredictionService {
 public:
  /// Serves `artifact.forest`, validating every submitted table against
  /// `artifact.meta.schema`. The service owns one dispatcher thread.
  explicit PredictionService(ModelArtifact artifact, ServiceConfig config = {});

  /// Drains every admitted request, fails any submit() still blocked on
  /// backpressure with service_stopped_error, waits for those producers to
  /// leave the lock, then stops the dispatcher. No future is ever abandoned.
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  /// Validates `rows` against the model schema (throws
  /// util::precondition_error on mismatch — in this thread, immediately),
  /// then blocks until the queue has room and returns a future holding one
  /// prediction per row (regression values or class codes; see
  /// class_labels() to render the latter). If the service stops while this
  /// call is blocked, the returned future fails with service_stopped_error.
  ///
  /// `deadline` bounds the request end-to-end: already-expired requests are
  /// refused before enqueueing (counted, never scored), a submit blocked on
  /// backpressure gives up when the deadline passes, and a request whose
  /// deadline lapses while queued is failed instead of scored. All three
  /// fail the future with deadline_exceeded_error and tick
  /// requests_deadline_exceeded.
  [[nodiscard]] std::future<std::vector<double>> submit(
      const table::Table& rows, Deadline deadline = std::nullopt);

  /// Non-blocking admission: nullopt (and a rejected tick) when the queue
  /// is full. Schema mismatches still throw. A call racing shutdown returns
  /// a future failed with service_stopped_error, and one arriving past its
  /// deadline a future failed with deadline_exceeded_error (not nullopt —
  /// those refusals are permanent, not backpressure).
  [[nodiscard]] std::optional<std::future<std::vector<double>>> try_submit(
      const table::Table& rows, Deadline deadline = std::nullopt);

  /// submit() + wait: scores `rows` synchronously through the batch path.
  [[nodiscard]] std::vector<double> score(const table::Table& rows);

  /// Forces everything currently admitted through the scorer and returns
  /// once those futures are fulfilled.
  void flush();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ModelMetadata& model() const noexcept { return meta_; }
  [[nodiscard]] cart::Scorer scorer() const noexcept { return config_.scorer; }

 private:
  struct Request {
    cart::Dataset rows;
    std::promise<std::vector<double>> result;
    std::chrono::steady_clock::time_point enqueued;
    std::uint64_t sequence = 0;
    Deadline deadline;
  };

  /// Why enqueue() returned: scored-eventually, backpressure refusal, or a
  /// future pre-failed with service_stopped_error / deadline_exceeded_error.
  enum class Admission { kAdmitted, kRejected, kStopped, kDeadlineExpired };

  /// Stable handles into obs::registry(), resolved once at construction so
  /// the hot path never takes the registry's registration lock.
  struct ObsHandles {
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* stopped = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* rows_scored = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* full_flushes = nullptr;
    obs::Counter* deadline_flushes = nullptr;
    obs::Counter* oversize = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* latency_us = nullptr;
    obs::Histogram* batch_rows = nullptr;
  };

  std::future<std::vector<double>> enqueue(const table::Table& rows, bool blocking,
                                           Admission& outcome, Deadline deadline);
  void run();
  void score_batch(std::vector<Request> batch, bool deadline_flush);

  ModelMetadata meta_;
  std::shared_ptr<const cart::Forest> forest_;
  ServiceConfig config_;
  ObsHandles obs_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   ///< dispatcher wakeups
  std::condition_variable space_free_;   ///< producer backpressure wakeups
  std::condition_variable drained_;      ///< flush() completion
  std::condition_variable idle_;         ///< destructor waits out blocked submits
  std::deque<Request> pending_;
  std::size_t pending_rows_ = 0;
  std::size_t blocked_enqueues_ = 0;     ///< producers inside space_free_.wait
  std::uint64_t next_sequence_ = 0;      ///< last sequence admitted
  std::uint64_t completed_sequence_ = 0; ///< all requests <= this are done
  bool stop_ = false;
  bool flush_requested_ = false;
  ServiceStats stats_;

  std::thread dispatcher_;  ///< last member: started after state is ready
};

}  // namespace rainshine::serve
