// ModelRegistry: the serving tier's name→version catalogue of loaded models.
//
// A scorer process keeps many fitted forests resident (one per metric, per
// fleet, per experiment arm) and must replace any of them while scoring
// traffic is in flight. The registry holds `shared_ptr<const ModelArtifact>`
// values behind a reader/writer lock: `get` hands out a reference the caller
// owns for as long as it scores, and `put` swaps the map entry atomically —
// in-flight batches finish on the model they started with, new batches see
// the new version. Nothing is ever mutated in place.
//
// Incoming rows are validated against the artifact's feature schema before
// they reach a forest (`schema_issues` / `make_scoring_dataset`), so a
// mis-shaped CSV is a typed, per-column diagnostic instead of a garbage
// prediction.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "rainshine/serve/artifact.hpp"
#include "rainshine/table/table.hpp"

namespace rainshine::serve {

/// Registry coordinate of one loaded model.
struct ModelKey {
  std::string name;
  std::uint32_t version = 0;

  friend bool operator==(const ModelKey&, const ModelKey&) = default;
};

/// Registration record for one loaded model: which swap installed it and
/// when. `generation` is the value of the registry-wide swap counter at the
/// `put` that installed this entry, so "is this the model I saw last scrape"
/// is answerable from the outside without comparing forests.
struct ModelInfo {
  ModelKey key;
  std::uint64_t generation = 0;
  std::int64_t registered_unix_ms = 0;
};

/// Outcome of a bulk directory load: how many artifacts registered, and a
/// (path, reason) list of the ones that did not — mirrors the
/// ingest::IngestReport stance that damaged inputs are observable, not fatal.
struct DirectoryLoadReport {
  std::size_t loaded = 0;
  std::vector<std::pair<std::string, std::string>> failures;
};

class ModelRegistry {
 public:
  /// Registers (or hot-swaps) `artifact` under its metadata name/version.
  /// Returns the key it registered under. Thread-safe; readers holding the
  /// previous version's shared_ptr keep it alive until they drop it.
  ModelKey put(ModelArtifact artifact);

  /// Latest (highest-version) model under `name`; nullptr when absent.
  [[nodiscard]] std::shared_ptr<const ModelArtifact> get(std::string_view name) const;
  /// Exact version; nullptr when absent.
  [[nodiscard]] std::shared_ptr<const ModelArtifact> get(std::string_view name,
                                                         std::uint32_t version) const;

  /// Drops one version. True if something was removed.
  bool erase(std::string_view name, std::uint32_t version);

  /// All registered (name, version) pairs, sorted by name then version.
  [[nodiscard]] std::vector<ModelKey> list() const;
  [[nodiscard]] std::size_t size() const;

  /// Registration records in (name, version) order.
  [[nodiscard]] std::vector<ModelInfo> describe() const;
  /// Registration record for one exact version; nullopt when absent.
  [[nodiscard]] std::optional<ModelInfo> info(std::string_view name,
                                              std::uint32_t version) const;
  /// Total `put` calls over the registry's lifetime (also the
  /// `serve.model_swaps` counter delta it contributed). 0 = never swapped.
  [[nodiscard]] std::uint64_t swap_generation() const;
  /// Wall-clock time of the most recent `put`, unix epoch ms; 0 when empty.
  /// Observability only — never feeds back into scoring, so determinism of
  /// predictions is untouched.
  [[nodiscard]] std::int64_t last_swap_unix_ms() const;

  /// Loads every `*.rsf` file directly inside `dir` (sorted by filename, so
  /// registration order is deterministic). Damaged artifacts are reported,
  /// not thrown; a missing/unreadable directory throws
  /// util::precondition_error.
  DirectoryLoadReport load_directory(const std::string& dir);

 private:
  struct Entry {
    std::shared_ptr<const ModelArtifact> artifact;
    std::uint64_t generation = 0;
    std::int64_t registered_unix_ms = 0;
  };

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::map<std::uint32_t, Entry>, std::less<>> models_;
  std::uint64_t swap_generation_ = 0;
  std::int64_t last_swap_unix_ms_ = 0;
};

/// Human-readable mismatches between `rows` and a fitted feature schema:
/// missing columns and numeric/categorical type clashes. Empty means the
/// table is scoreable. (Unseen categorical levels are not an error — the
/// re-encode maps them to missing and splits route them like fitting did.)
[[nodiscard]] std::vector<std::string> schema_issues(
    const table::Table& rows, std::span<const cart::FeatureInfo> schema);

/// Schema-checked scoring view: throws util::precondition_error listing
/// every issue when `rows` does not satisfy `schema`, otherwise re-encodes
/// the columns against the fitted dictionaries and returns the Dataset.
[[nodiscard]] cart::Dataset make_scoring_dataset(
    const table::Table& rows, std::span<const cart::FeatureInfo> schema);

}  // namespace rainshine::serve
