// Model artifacts: the `.rsf` (Rain/Shine Forest) on-disk format.
//
// The paper's decision studies fit forests in-process and discard them; the
// serving loop the future-work section sketches (online failure prediction,
// §VII) needs the opposite: fit once, score for months. An `.rsf` file makes
// a fitted cart::Forest outlive its process:
//
//   offset  size  field
//   ------  ----  ------------------------------------------------------
//        0     4  magic "RSF1"
//        4     4  format version (u32, little-endian; 1 or 2)
//        8     8  payload size in bytes (u64)
//       16     4  CRC32 (IEEE 802.3) of the payload bytes (u32)
//       20     -  payload: metadata block, packed trees, then (v2) the
//                 flat inference section
//
// The payload is byte-oriented little-endian regardless of host endianness
// (integers are assembled a byte at a time; doubles travel as the LE bytes
// of their IEEE-754 bit pattern), so artifacts written on any supported host
// load on any other. The metadata block carries everything a scorer needs
// besides the trees: model name/version, task, the feature schema (column
// names, categorical flags, level dictionaries), the ForestConfig that grew
// the model, and its out-of-bag error.
//
// Version 2 appends the compiled cart::FlatForest the serving hot path
// scores with (see cart/flat.hpp), so loading adopts the layout instead of
// re-deriving it:
//
//   u64 node_count | u64 root_count | u64 pool_word_count
//   root_count x u32 roots          (start index of each tree's node span)
//   root_count x u32 depths         (max node depth per tree)
//   node_count x 32-byte FlatNode records — exactly the in-memory layout
//     on little-endian hosts (f64 threshold, u32 child[2], u32 feature,
//     u32 bitset_offset, u32 bitset_bits, u8 categorical,
//     u8 missing_goes_left, 2 zero bytes), so the decoder adopts the whole
//     array with one memcpy there
//   pool_word_count x u64 bitset pool words
//
// The decoder re-proves every structural invariant the traversal relies on
// (spans match the v1 trees, children stay inside their tree and after
// their parent, recomputed BFS depths equal the stored depths, bitset
// ranges sit inside the pool) before adopting; a forged-CRC artifact gets a
// typed kMalformedFlat error, never UB. Version-1 artifacts stay loadable —
// the flat layout is compiled from the trees on load instead.
//
// Loading NEVER exhibits UB on a damaged file. Every read is bounds-checked
// against the declared payload, counts are sanity-capped against the bytes
// that remain, and structural invariants (child indices in range, feature
// indices inside the schema) are re-validated; any violation throws a typed
// `artifact_error` carrying an ArtifactError reason — the serving analogue
// of ingest::ReasonCode.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "rainshine/cart/forest.hpp"

namespace rainshine::serve {

inline constexpr std::array<unsigned char, 4> kMagic{'R', 'S', 'F', '1'};
/// Newest format this build writes (and the newest it reads).
inline constexpr std::uint32_t kFormatVersion = 2;
/// Oldest format this build still reads (v1 = trees only, no flat section).
inline constexpr std::uint32_t kMinFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
inline constexpr std::string_view kArtifactExtension = ".rsf";

/// Why a load was rejected.
enum class ArtifactError : std::uint8_t {
  kIoError = 0,         ///< the stream/file could not be read at all
  kBadMagic,            ///< first bytes are not "RSF1"
  kUnsupportedVersion,  ///< format version this build does not speak
  kTruncated,           ///< stream ended before the declared payload did
  kChecksumMismatch,    ///< CRC32 over the payload does not match the header
  kMalformedMetadata,   ///< metadata block failed bounds/sanity checks
  kMalformedForest,     ///< tree block failed bounds/structural checks
  kMalformedFlat,       ///< v2 flat section failed bounds/structural checks
  kTrailingBytes,       ///< bytes follow the declared payload
};

[[nodiscard]] constexpr std::string_view to_string(ArtifactError e) noexcept {
  switch (e) {
    case ArtifactError::kIoError: return "io-error";
    case ArtifactError::kBadMagic: return "bad-magic";
    case ArtifactError::kUnsupportedVersion: return "unsupported-version";
    case ArtifactError::kTruncated: return "truncated";
    case ArtifactError::kChecksumMismatch: return "checksum-mismatch";
    case ArtifactError::kMalformedMetadata: return "malformed-metadata";
    case ArtifactError::kMalformedForest: return "malformed-forest";
    case ArtifactError::kMalformedFlat: return "malformed-flat";
    case ArtifactError::kTrailingBytes: return "trailing-bytes";
  }
  return "?";
}

/// Thrown by load_forest on any damaged or unreadable artifact. Catch this
/// (or inspect `reason()`) instead of pattern-matching message strings.
class artifact_error : public std::runtime_error {
 public:
  artifact_error(ArtifactError reason, const std::string& message)
      : std::runtime_error(std::string(to_string(reason)) + ": " + message),
        reason_(reason) {}

  [[nodiscard]] ArtifactError reason() const noexcept { return reason_; }

 private:
  ArtifactError reason_;
};

/// Everything an artifact records about a model besides its trees. On save,
/// `name`/`version`/`config` come from the caller; task, schema, class
/// labels and oob_error are captured from the forest itself.
struct ModelMetadata {
  std::string name;            ///< registry key ("lambda-hw", ...)
  std::uint32_t version = 1;   ///< registry version (monotonic per name)
  cart::Task task = cart::Task::kRegression;
  std::vector<cart::FeatureInfo> schema;  ///< fitted feature columns, in order
  std::vector<std::string> class_labels;  ///< classification only
  cart::ForestConfig config;   ///< hyper-parameters that grew the model
  double oob_error = 0.0;      ///< honest generalization error at fit time
};

/// A loaded model: immutable forest plus its metadata. shared_ptr so a
/// registry hot-swap cannot pull the forest out from under in-flight scores.
struct ModelArtifact {
  ModelMetadata meta;
  std::shared_ptr<const cart::Forest> forest;
};

/// CRC32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF — the zlib/PNG
/// polynomial). Exposed so tests can forge and verify checksums.
[[nodiscard]] std::uint32_t crc32(std::span<const unsigned char> bytes) noexcept;

/// Serializes `forest` with `meta.name/version/config`; the remaining
/// metadata fields are captured from the forest (any caller-supplied values
/// for them are ignored). Requires a non-empty forest whose trees share one
/// feature schema (always true for grow_forest output).
void save_forest(const cart::Forest& forest, const ModelMetadata& meta,
                 std::ostream& out);
void save_forest_file(const cart::Forest& forest, const ModelMetadata& meta,
                      const std::string& path);

/// Compatibility writer: emits a version-1 artifact (trees only, no flat
/// section) that older builds load unchanged. New code should prefer
/// save_forest; this exists for fleets mid-upgrade and for pinning the v1
/// golden file in tests.
void save_forest_v1(const cart::Forest& forest, const ModelMetadata& meta,
                    std::ostream& out);

/// Parses an artifact, validating header, checksum and structure; throws
/// artifact_error (with a typed reason) on anything less than a pristine
/// file. The returned forest is bit-identical in behavior to the one saved.
[[nodiscard]] ModelArtifact load_forest(std::istream& in);
[[nodiscard]] ModelArtifact load_forest_file(const std::string& path);

}  // namespace rainshine::serve
