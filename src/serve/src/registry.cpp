#include "rainshine/serve/registry.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <mutex>

#include "rainshine/obs/metrics.hpp"
#include "rainshine/util/check.hpp"

namespace rainshine::serve {

namespace {

std::int64_t now_unix_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ModelKey ModelRegistry::put(ModelArtifact artifact) {
  util::require(artifact.forest != nullptr, "artifact carries no forest");
  util::require(!artifact.meta.name.empty(), "artifact needs a model name");
  ModelKey key{artifact.meta.name, artifact.meta.version};
  Entry entry;
  entry.artifact = std::make_shared<const ModelArtifact>(std::move(artifact));
  entry.registered_unix_ms = now_unix_ms();
  {
    std::unique_lock lock(mutex_);
    entry.generation = ++swap_generation_;
    last_swap_unix_ms_ = entry.registered_unix_ms;
    models_[key.name][key.version] = std::move(entry);
  }
  obs::registry().counter("serve.model_swaps").add(1);
  return key;
}

std::shared_ptr<const ModelArtifact> ModelRegistry::get(std::string_view name) const {
  std::shared_lock lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end() || it->second.empty()) return nullptr;
  return it->second.rbegin()->second.artifact;
}

std::shared_ptr<const ModelArtifact> ModelRegistry::get(std::string_view name,
                                                        std::uint32_t version) const {
  std::shared_lock lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end()) return nullptr;
  const auto vit = it->second.find(version);
  return vit == it->second.end() ? nullptr : vit->second.artifact;
}

bool ModelRegistry::erase(std::string_view name, std::uint32_t version) {
  std::unique_lock lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end()) return false;
  const bool removed = it->second.erase(version) > 0;
  if (it->second.empty()) models_.erase(it);
  return removed;
}

std::vector<ModelKey> ModelRegistry::list() const {
  std::shared_lock lock(mutex_);
  std::vector<ModelKey> out;
  for (const auto& [name, versions] : models_) {
    for (const auto& [version, model] : versions) out.push_back({name, version});
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, versions] : models_) n += versions.size();
  return n;
}

std::vector<ModelInfo> ModelRegistry::describe() const {
  std::shared_lock lock(mutex_);
  std::vector<ModelInfo> out;
  for (const auto& [name, versions] : models_) {
    for (const auto& [version, entry] : versions) {
      out.push_back({{name, version}, entry.generation, entry.registered_unix_ms});
    }
  }
  return out;
}

std::optional<ModelInfo> ModelRegistry::info(std::string_view name,
                                             std::uint32_t version) const {
  std::shared_lock lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end()) return std::nullopt;
  const auto vit = it->second.find(version);
  if (vit == it->second.end()) return std::nullopt;
  return ModelInfo{{std::string(name), version}, vit->second.generation,
                   vit->second.registered_unix_ms};
}

std::uint64_t ModelRegistry::swap_generation() const {
  std::shared_lock lock(mutex_);
  return swap_generation_;
}

std::int64_t ModelRegistry::last_swap_unix_ms() const {
  std::shared_lock lock(mutex_);
  return last_swap_unix_ms_;
}

DirectoryLoadReport ModelRegistry::load_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  util::require(fs::is_directory(dir, ec), "not a readable directory: " + dir);

  std::vector<fs::path> artifacts;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == kArtifactExtension) {
      artifacts.push_back(entry.path());
    }
  }
  std::sort(artifacts.begin(), artifacts.end());

  DirectoryLoadReport report;
  for (const fs::path& path : artifacts) {
    try {
      put(load_forest_file(path.string()));
      ++report.loaded;
    } catch (const artifact_error& e) {
      report.failures.emplace_back(path.string(), e.what());
    } catch (const util::precondition_error& e) {
      report.failures.emplace_back(path.string(), e.what());
    }
  }
  return report;
}

std::vector<std::string> schema_issues(const table::Table& rows,
                                       std::span<const cart::FeatureInfo> schema) {
  std::vector<std::string> issues;
  for (const cart::FeatureInfo& feature : schema) {
    if (!rows.has_column(feature.name)) {
      issues.push_back("missing column '" + feature.name + "'");
      continue;
    }
    const bool nominal =
        rows.column(feature.name).type() == table::ColumnType::kNominal;
    if (nominal != feature.categorical) {
      issues.push_back("column '" + feature.name + "' is " +
                       (nominal ? "categorical" : "numeric") +
                       " but the model fitted it as " +
                       (feature.categorical ? "categorical" : "numeric"));
    }
  }
  return issues;
}

cart::Dataset make_scoring_dataset(const table::Table& rows,
                                   std::span<const cart::FeatureInfo> schema) {
  const std::vector<std::string> issues = schema_issues(rows, schema);
  if (!issues.empty()) {
    std::string what = "rows do not match the model's feature schema:";
    for (const std::string& issue : issues) what += "\n  - " + issue;
    throw util::precondition_error(what);
  }
  return cart::Dataset(rows, schema);
}

}  // namespace rainshine::serve
