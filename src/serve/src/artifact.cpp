#include "rainshine/serve/artifact.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "rainshine/util/check.hpp"

namespace rainshine::serve {

namespace {

// ---- little-endian encoding -----------------------------------------------
//
// Integers are assembled a byte at a time, least-significant first, so the
// on-disk layout is identical on big- and little-endian hosts. Doubles travel
// as the LE bytes of their IEEE-754 bit pattern (bit_cast both ways), which
// also round-trips NaN payloads exactly — oob_error can legitimately be NaN.

void put_u8(std::vector<unsigned char>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_i32(std::vector<unsigned char>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<unsigned char>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(std::vector<unsigned char>& out, std::string_view s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_bytes(std::vector<unsigned char>& out, std::span<const std::uint8_t> b) {
  put_u64(out, b.size());
  out.insert(out.end(), b.begin(), b.end());
}

// ---- bounds-checked decoding ----------------------------------------------

/// Cursor over the payload. Every accessor checks the remaining byte count
/// and throws a typed artifact_error on overrun, so a truncated or
/// length-corrupted payload can never read out of bounds. `section` selects
/// which malformed-* reason an overrun reports.
class Reader {
 public:
  Reader(std::span<const unsigned char> data, ArtifactError section)
      : data_(data), section_(section) {}

  void set_section(ArtifactError section) noexcept { section_ = section; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

  [[noreturn]] void fail(const std::string& what) const {
    throw artifact_error(section_, what + " at payload offset " +
                                       std::to_string(pos_));
  }

  [[nodiscard]] std::uint8_t get_u8() {
    need(1, "u8");
    return data_[pos_++];
  }

  [[nodiscard]] std::uint32_t get_u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    need(8, "u64");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::int32_t get_i32() {
    return static_cast<std::int32_t>(get_u32());
  }

  [[nodiscard]] double get_f64() { return std::bit_cast<double>(get_u64()); }

  /// Count prefix for a sequence whose elements occupy at least
  /// `min_element_bytes` each. Capping against the bytes that remain turns a
  /// length-field corruption into a typed error instead of a giant alloc.
  [[nodiscard]] std::size_t get_count(std::size_t min_element_bytes,
                                      const char* what) {
    const std::uint64_t n = get_u64();
    if (n > remaining() / std::max<std::size_t>(min_element_bytes, 1)) {
      fail(std::string(what) + " count " + std::to_string(n) +
           " exceeds remaining payload");
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::string get_string() {
    const std::size_t n = get_count(1, "string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] std::vector<std::uint8_t> get_bytes() {
    const std::size_t n = get_count(1, "byte-vector");
    std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }

  /// Raw view over the next `n` bytes (for bulk memcpy adoption of fixed
  /// layout records). Bounds-checked like every other accessor.
  [[nodiscard]] std::span<const unsigned char> get_raw(std::size_t n,
                                                       const char* what) {
    need(n, what);
    const auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) fail(std::string("payload ends inside ") + what);
  }

  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
  ArtifactError section_;
};

// ---- payload schema --------------------------------------------------------

void encode_config(std::vector<unsigned char>& out, const cart::ForestConfig& c) {
  put_u64(out, c.num_trees);
  put_u64(out, c.tree.min_samples_split);
  put_u64(out, c.tree.min_samples_leaf);
  put_u64(out, c.tree.max_depth);
  put_f64(out, c.tree.cp);
  put_bytes(out, c.tree.allowed_features);
  put_f64(out, c.sample_fraction);
  put_u64(out, c.features_per_tree);
  put_u64(out, c.seed);
}

cart::ForestConfig decode_config(Reader& r) {
  cart::ForestConfig c;
  c.num_trees = static_cast<std::size_t>(r.get_u64());
  c.tree.min_samples_split = static_cast<std::size_t>(r.get_u64());
  c.tree.min_samples_leaf = static_cast<std::size_t>(r.get_u64());
  c.tree.max_depth = static_cast<std::size_t>(r.get_u64());
  c.tree.cp = r.get_f64();
  c.tree.allowed_features = r.get_bytes();
  c.sample_fraction = r.get_f64();
  c.features_per_tree = static_cast<std::size_t>(r.get_u64());
  c.seed = r.get_u64();
  return c;
}

void encode_metadata(std::vector<unsigned char>& out, const ModelMetadata& m) {
  put_string(out, m.name);
  put_u32(out, m.version);
  put_u8(out, static_cast<std::uint8_t>(m.task));
  put_f64(out, m.oob_error);
  encode_config(out, m.config);
  put_u64(out, m.schema.size());
  for (const cart::FeatureInfo& f : m.schema) {
    put_string(out, f.name);
    put_u8(out, f.categorical ? 1 : 0);
    put_u64(out, f.labels.size());
    for (const std::string& label : f.labels) put_string(out, label);
  }
  put_u64(out, m.class_labels.size());
  for (const std::string& label : m.class_labels) put_string(out, label);
}

ModelMetadata decode_metadata(Reader& r) {
  ModelMetadata m;
  m.name = r.get_string();
  m.version = r.get_u32();
  const std::uint8_t task = r.get_u8();
  if (task > static_cast<std::uint8_t>(cart::Task::kClassification)) {
    r.fail("unknown task code " + std::to_string(task));
  }
  m.task = static_cast<cart::Task>(task);
  m.oob_error = r.get_f64();
  m.config = decode_config(r);
  const std::size_t num_features = r.get_count(10, "feature-schema");
  m.schema.reserve(num_features);
  for (std::size_t f = 0; f < num_features; ++f) {
    cart::FeatureInfo info;
    info.name = r.get_string();
    info.categorical = r.get_u8() != 0;
    const std::size_t num_labels = r.get_count(8, "feature-label");
    info.labels.reserve(num_labels);
    for (std::size_t l = 0; l < num_labels; ++l) {
      info.labels.push_back(r.get_string());
    }
    m.schema.push_back(std::move(info));
  }
  const std::size_t num_classes = r.get_count(8, "class-label");
  m.class_labels.reserve(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    m.class_labels.push_back(r.get_string());
  }
  if (m.schema.empty()) r.fail("feature schema is empty");
  if (m.task == cart::Task::kClassification && m.class_labels.size() < 2) {
    r.fail("classification artifact needs at least two class labels");
  }
  return m;
}

void encode_node(std::vector<unsigned char>& out, const cart::Node& n) {
  put_i32(out, n.left);
  put_i32(out, n.right);
  put_i32(out, n.parent);
  put_u32(out, n.depth);
  put_u64(out, n.feature);
  put_u8(out, n.categorical ? 1 : 0);
  put_u8(out, n.missing_goes_left ? 1 : 0);
  put_f64(out, n.threshold);
  put_bytes(out, n.go_left);
  put_u64(out, n.n);
  put_f64(out, n.prediction);
  put_f64(out, n.impurity);
  put_f64(out, n.improve);
  put_u64(out, n.class_counts.size());
  for (const double c : n.class_counts) put_f64(out, c);
}

cart::Node decode_node(Reader& r) {
  cart::Node n;
  n.left = r.get_i32();
  n.right = r.get_i32();
  n.parent = r.get_i32();
  n.depth = r.get_u32();
  n.feature = static_cast<std::size_t>(r.get_u64());
  n.categorical = r.get_u8() != 0;
  n.missing_goes_left = r.get_u8() != 0;
  n.threshold = r.get_f64();
  n.go_left = r.get_bytes();
  n.n = static_cast<std::size_t>(r.get_u64());
  n.prediction = r.get_f64();
  n.impurity = r.get_f64();
  n.improve = r.get_f64();
  const std::size_t num_counts = r.get_count(8, "class-count");
  n.class_counts.reserve(num_counts);
  for (std::size_t c = 0; c < num_counts; ++c) {
    n.class_counts.push_back(r.get_f64());
  }
  return n;
}

/// Structural invariants prediction relies on (tree.cpp walks children
/// unchecked, Forest sizes its vote tally from leaf predictions), re-proved
/// here so a forged-CRC artifact still cannot cause UB:
///   * children both absent (leaf) or both present, in (id, num_nodes) —
///     strictly increasing indices guarantee the walk terminates;
///   * split features name a schema column;
///   * classification leaf predictions are integral class codes.
void validate_tree(const std::vector<cart::Node>& nodes,
                   const ModelMetadata& meta, Reader& r) {
  const auto n = static_cast<std::int32_t>(nodes.size());
  for (std::size_t id = 0; id < nodes.size(); ++id) {
    const cart::Node& node = nodes[id];
    const bool left_leaf = node.left == cart::kNoChild;
    const bool right_leaf = node.right == cart::kNoChild;
    if (left_leaf != right_leaf) {
      r.fail("node " + std::to_string(id) + " has exactly one child");
    }
    if (!left_leaf) {
      const auto sid = static_cast<std::int32_t>(id);
      if (node.left <= sid || node.left >= n || node.right <= sid ||
          node.right >= n) {
        r.fail("node " + std::to_string(id) + " child indices out of range");
      }
      if (node.feature >= meta.schema.size()) {
        r.fail("node " + std::to_string(id) + " split feature out of schema");
      }
    } else if (meta.task == cart::Task::kClassification) {
      const double p = node.prediction;
      if (!(p >= 0.0) || p >= static_cast<double>(meta.class_labels.size()) ||
          p != std::floor(p)) {
        r.fail("node " + std::to_string(id) + " leaf class code invalid");
      }
    }
  }
}

// ---- v2 flat inference section ---------------------------------------------

void encode_flat(std::vector<unsigned char>& out, const cart::FlatForest& f) {
  put_u64(out, f.nodes().size());
  put_u64(out, f.roots().size());
  put_u64(out, f.bitset_pool().size());
  for (const std::uint32_t r : f.roots()) put_u32(out, r);
  for (const std::uint32_t d : f.depths()) put_u32(out, d);
  for (const cart::FlatNode& nd : f.nodes()) {
    put_f64(out, nd.threshold);
    put_u32(out, nd.child[0]);
    put_u32(out, nd.child[1]);
    put_u32(out, nd.feature);
    put_u32(out, nd.bitset_offset);
    put_u32(out, nd.bitset_bits);
    put_u8(out, nd.categorical);
    put_u8(out, nd.missing_goes_left);
    // leaf_children is derived in memory (init_derived); pads are zero on
    // disk so the record matches the canonical compile() output bytes.
    put_u8(out, 0);
    put_u8(out, 0);
  }
  for (const std::uint64_t w : f.bitset_pool()) put_u64(out, w);
}

/// Decodes and structurally validates the v2 flat section so the forest can
/// adopt it without recompiling from the trees. Everything the traversal
/// dereferences unchecked is re-proved here against the already-validated
/// v1 trees: per-tree node spans, child/feature/bitset ranges, and the
/// stored max depths (recomputed by one ascending pass — valid because
/// children always follow their parent in the BFS layout).
cart::FlatForest decode_flat(Reader& r, const ModelMetadata& meta,
                             std::span<const cart::Tree> trees) {
  r.set_section(ArtifactError::kMalformedFlat);
  const std::size_t node_count = r.get_count(32, "flat-node");
  const std::uint64_t root_count = r.get_u64();
  if (root_count != trees.size()) {
    r.fail("flat root count " + std::to_string(root_count) + " != " +
           std::to_string(trees.size()) + " trees");
  }
  const std::size_t pool_words = r.get_count(8, "flat-pool-word");

  std::vector<std::uint32_t> roots(trees.size());
  for (auto& v : roots) v = r.get_u32();
  if (roots.front() != 0) r.fail("flat tree spans do not start at node 0");
  std::vector<std::uint32_t> depths(trees.size());
  for (auto& v : depths) v = r.get_u32();

  std::vector<cart::FlatNode> nodes(node_count);
  const auto raw = r.get_raw(node_count * sizeof(cart::FlatNode), "flat-node records");
  if constexpr (std::endian::native == std::endian::little) {
    // The on-disk record IS the in-memory struct on LE hosts (static_asserts
    // in cart/flat.cpp pin the field offsets): adopt with one memcpy.
    std::memcpy(nodes.data(), raw.data(), raw.size());
  } else {
    for (std::size_t i = 0; i < node_count; ++i) {
      const unsigned char* p = raw.data() + i * sizeof(cart::FlatNode);
      const auto u32_at = [&](std::size_t off) {
        std::uint32_t v = 0;
        for (std::size_t b = 0; b < 4; ++b) {
          v |= static_cast<std::uint32_t>(p[off + b]) << (8 * b);
        }
        return v;
      };
      std::uint64_t thr = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        thr |= static_cast<std::uint64_t>(p[b]) << (8 * b);
      }
      nodes[i].threshold = std::bit_cast<double>(thr);
      nodes[i].child[0] = u32_at(8);
      nodes[i].child[1] = u32_at(12);
      nodes[i].feature = u32_at(16);
      nodes[i].bitset_offset = u32_at(20);
      nodes[i].bitset_bits = u32_at(24);
      nodes[i].categorical = p[28];
      nodes[i].missing_goes_left = p[29];
      nodes[i].leaf_children = p[30];
      nodes[i].pad0 = p[31];
    }
  }
  std::vector<std::uint64_t> pool(pool_words);
  for (auto& w : pool) w = r.get_u64();

  // Per-tree structural validation against the v1 trees decoded just before.
  std::vector<std::uint32_t> level;
  constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const std::size_t begin = roots[t];
    const std::size_t end = t + 1 < trees.size() ? roots[t + 1] : node_count;
    const auto tree_label = [&](const std::string& what) {
      return "flat tree " + std::to_string(t) + " " + what;
    };
    if (begin >= end || end > node_count) {
      r.fail(tree_label("node span is empty or out of order"));
    }
    if (end - begin != trees[t].nodes().size()) {
      r.fail(tree_label("node span size != tree node count"));
    }
    level.assign(end - begin, kUnreached);
    level[0] = 0;
    std::uint32_t max_depth = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const cart::FlatNode& nd = nodes[i];
      if (level[i - begin] == kUnreached) {
        r.fail(tree_label("node " + std::to_string(i - begin) + " is unreachable"));
      }
      max_depth = std::max(max_depth, level[i - begin]);
      if (nd.categorical > 1 || nd.missing_goes_left > 1 ||
          nd.leaf_children != 0 || nd.pad0 != 0) {
        r.fail(tree_label("node " + std::to_string(i - begin) + " flag bytes invalid"));
      }
      if (nd.child[0] == i) {  // leaf: self-loop, payload in threshold
        if (nd.child[1] != i || nd.missing_goes_left != 1 ||
            nd.categorical != 0 || nd.feature != 0 || nd.bitset_offset != 0 ||
            nd.bitset_bits != 0) {
          r.fail(tree_label("leaf " + std::to_string(i - begin) + " malformed"));
        }
        if (meta.task == cart::Task::kClassification) {
          const double p = nd.threshold;
          if (!(p >= 0.0) ||
              p >= static_cast<double>(meta.class_labels.size()) ||
              p != std::floor(p)) {
            r.fail(tree_label("leaf class code invalid"));
          }
        }
        continue;
      }
      if (nd.child[0] <= i || nd.child[1] <= i || nd.child[0] >= end ||
          nd.child[1] >= end) {
        r.fail(tree_label("node " + std::to_string(i - begin) +
                          " child indices out of range"));
      }
      for (const std::uint32_t c : nd.child) {
        if (level[c - begin] != kUnreached) {
          r.fail(tree_label("node " + std::to_string(c - begin) +
                            " has two parents"));
        }
        level[c - begin] = level[i - begin] + 1;
      }
      if (nd.feature >= meta.schema.size()) {
        r.fail(tree_label("split feature out of schema"));
      }
      if (nd.categorical != 0) {
        if (nd.bitset_bits == 0) r.fail(tree_label("categorical bitset empty"));
        const std::size_t words = (static_cast<std::size_t>(nd.bitset_bits) + 63) / 64;
        if (nd.bitset_offset > pool_words || words > pool_words - nd.bitset_offset) {
          r.fail(tree_label("categorical bitset outside the pool"));
        }
      } else if (nd.bitset_offset != 0 || nd.bitset_bits != 0) {
        r.fail(tree_label("numeric node carries bitset fields"));
      }
    }
    if (max_depth != depths[t]) {
      r.fail(tree_label("stored depth " + std::to_string(depths[t]) +
                        " != recomputed " + std::to_string(max_depth)));
    }
  }

  const std::size_t num_classes =
      meta.task == cart::Task::kClassification ? meta.class_labels.size() : 0;
  return cart::FlatForest(meta.task, num_classes, std::move(nodes),
                          std::move(roots), std::move(depths), std::move(pool));
}

void write_bytes(std::ostream& out, const unsigned char* data, std::size_t n) {
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(n));
}

}  // namespace

std::uint32_t crc32(std::span<const unsigned char> bytes) noexcept {
  // Table-driven IEEE CRC32 (reflected polynomial 0xEDB88320), built once.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const unsigned char b : bytes) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

void save_forest_impl(const cart::Forest& forest, const ModelMetadata& meta,
                      std::ostream& out, std::uint32_t version) {
  util::require(forest.size() > 0, "cannot save an empty forest");
  const cart::Tree& first = forest.trees().front();
  for (const cart::Tree& tree : forest.trees()) {
    util::require(tree.features() == first.features() &&
                      tree.class_labels() == first.class_labels(),
                  "forest trees disagree on feature schema; cannot save");
  }

  ModelMetadata full = meta;
  full.task = forest.task();
  full.schema = first.features();
  full.class_labels = first.class_labels();
  full.oob_error = forest.oob_error();

  std::vector<unsigned char> payload;
  encode_metadata(payload, full);
  put_u64(payload, forest.size());
  for (const cart::Tree& tree : forest.trees()) {
    put_u64(payload, tree.nodes().size());
    for (const cart::Node& node : tree.nodes()) encode_node(payload, node);
  }
  if (version >= 2) encode_flat(payload, forest.flat());

  std::vector<unsigned char> header;
  header.reserve(kHeaderBytes);
  header.insert(header.end(), kMagic.begin(), kMagic.end());
  put_u32(header, version);
  put_u64(header, payload.size());
  put_u32(header, crc32(payload));

  write_bytes(out, header.data(), header.size());
  write_bytes(out, payload.data(), payload.size());
  util::require(out.good(), "I/O error writing model artifact");
}

}  // namespace

void save_forest(const cart::Forest& forest, const ModelMetadata& meta,
                 std::ostream& out) {
  save_forest_impl(forest, meta, out, kFormatVersion);
}

void save_forest_v1(const cart::Forest& forest, const ModelMetadata& meta,
                    std::ostream& out) {
  save_forest_impl(forest, meta, out, 1);
}

void save_forest_file(const cart::Forest& forest, const ModelMetadata& meta,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  util::require(out.good(), "cannot open artifact for writing: " + path);
  save_forest(forest, meta, out);
  out.close();
  util::require(out.good(), "I/O error closing artifact: " + path);
}

ModelArtifact load_forest(std::istream& in) {
  if (!in.good()) {
    throw artifact_error(ArtifactError::kIoError, "stream not readable");
  }

  std::array<unsigned char, kHeaderBytes> header{};
  in.read(reinterpret_cast<char*>(header.data()), kHeaderBytes);
  const auto header_read = static_cast<std::size_t>(in.gcount());
  if (header_read < kMagic.size() ||
      !std::equal(kMagic.begin(), kMagic.end(), header.begin())) {
    throw artifact_error(ArtifactError::kBadMagic,
                         "not an .rsf artifact (magic mismatch)");
  }
  if (header_read < kHeaderBytes) {
    throw artifact_error(ArtifactError::kTruncated,
                         "file ends inside the 20-byte header");
  }
  const std::span<const unsigned char> header_span(header);
  Reader h(header_span.subspan(kMagic.size()), ArtifactError::kTruncated);
  const std::uint32_t version = h.get_u32();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw artifact_error(ArtifactError::kUnsupportedVersion,
                         "format version " + std::to_string(version) +
                             " (this build reads versions " +
                             std::to_string(kMinFormatVersion) + " through " +
                             std::to_string(kFormatVersion) + ")");
  }
  const std::uint64_t payload_size = h.get_u64();
  const std::uint32_t expected_crc = h.get_u32();

  // Read the payload in bounded chunks: a corrupted size field must produce
  // a typed error, not a size_t-max allocation.
  std::vector<unsigned char> payload;
  payload.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(payload_size, 1u << 20)));
  constexpr std::size_t kChunk = 1u << 20;
  while (payload.size() < payload_size && in.good()) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(kChunk, payload_size - payload.size()));
    const std::size_t base = payload.size();
    payload.resize(base + want);
    in.read(reinterpret_cast<char*>(payload.data() + base),
            static_cast<std::streamsize>(want));
    payload.resize(base + static_cast<std::size_t>(in.gcount()));
    if (static_cast<std::size_t>(in.gcount()) < want) break;
  }
  if (payload.size() < payload_size) {
    throw artifact_error(
        ArtifactError::kTruncated,
        "payload ends after " + std::to_string(payload.size()) + " of " +
            std::to_string(payload_size) + " declared bytes");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    throw artifact_error(ArtifactError::kTrailingBytes,
                         "bytes follow the declared payload");
  }
  const std::uint32_t actual_crc = crc32(payload);
  if (actual_crc != expected_crc) {
    throw artifact_error(ArtifactError::kChecksumMismatch,
                         "payload CRC32 mismatch");
  }

  Reader r(payload, ArtifactError::kMalformedMetadata);
  ModelArtifact artifact;
  artifact.meta = decode_metadata(r);

  r.set_section(ArtifactError::kMalformedForest);
  const std::size_t num_trees = r.get_count(8, "tree");
  if (num_trees == 0) r.fail("forest has no trees");
  std::vector<cart::Tree> trees;
  trees.reserve(num_trees);
  for (std::size_t t = 0; t < num_trees; ++t) {
    const std::size_t num_nodes = r.get_count(8, "node");
    if (num_nodes == 0) r.fail("tree " + std::to_string(t) + " has no nodes");
    std::vector<cart::Node> nodes;
    nodes.reserve(num_nodes);
    for (std::size_t i = 0; i < num_nodes; ++i) nodes.push_back(decode_node(r));
    validate_tree(nodes, artifact.meta, r);
    trees.emplace_back(artifact.meta.task, artifact.meta.schema,
                       std::move(nodes), artifact.meta.class_labels);
  }

  if (version >= 2) {
    cart::FlatForest flat = decode_flat(r, artifact.meta, trees);
    if (!r.exhausted()) {
      r.fail(std::to_string(r.remaining()) + " undeclared bytes after the flat section");
    }
    artifact.forest = std::make_shared<const cart::Forest>(
        artifact.meta.task, std::move(trees), artifact.meta.oob_error,
        std::move(flat));
  } else {
    if (!r.exhausted()) {
      r.fail(std::to_string(r.remaining()) + " undeclared bytes after the forest");
    }
    // v1 carries no flat section; the Forest constructor compiles one.
    artifact.forest = std::make_shared<const cart::Forest>(
        artifact.meta.task, std::move(trees), artifact.meta.oob_error);
  }
  return artifact;
}

ModelArtifact load_forest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw artifact_error(ArtifactError::kIoError,
                         "cannot open artifact: " + path);
  }
  return load_forest(in);
}

}  // namespace rainshine::serve
