#include "rainshine/serve/service.hpp"

#include <algorithm>

#include "rainshine/util/check.hpp"

namespace rainshine::serve {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  const auto d = std::chrono::steady_clock::now() - since;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

std::string ServiceStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%llu req (%llu rejected, %llu failed, %llu expired), "
                "%llu rows in %llu "
                "batches (%llu full, %llu deadline), peak queue %llu rows, "
                "latency mean %.1fus max %lluus",
                static_cast<unsigned long long>(requests_admitted),
                static_cast<unsigned long long>(requests_rejected),
                static_cast<unsigned long long>(requests_failed),
                static_cast<unsigned long long>(requests_deadline_exceeded),
                static_cast<unsigned long long>(rows_scored),
                static_cast<unsigned long long>(batches_flushed),
                static_cast<unsigned long long>(full_flushes),
                static_cast<unsigned long long>(deadline_flushes),
                static_cast<unsigned long long>(peak_queue_rows),
                mean_latency_us(),
                static_cast<unsigned long long>(max_latency_us));
  return buf;
}

PredictionService::PredictionService(ModelArtifact artifact, ServiceConfig config)
    : meta_(std::move(artifact.meta)),
      forest_(std::move(artifact.forest)),
      config_(config) {
  util::require(forest_ != nullptr, "PredictionService needs a forest");
  util::require(!meta_.schema.empty(), "PredictionService needs a feature schema");
  util::require(config_.max_batch_rows > 0, "max_batch_rows must be positive");
  util::require(config_.max_queue_rows >= config_.max_batch_rows,
                "max_queue_rows must be at least max_batch_rows");
  obs::Registry& reg = obs::registry();
  obs_.admitted = &reg.counter("serve.requests_admitted");
  obs_.rejected = &reg.counter("serve.requests_rejected");
  obs_.stopped = &reg.counter("serve.requests_stopped");
  obs_.completed = &reg.counter("serve.requests_completed");
  obs_.failed = &reg.counter("serve.requests_failed");
  obs_.deadline_exceeded = &reg.counter("serve.deadline_exceeded");
  obs_.rows_scored = &reg.counter("serve.rows_scored");
  obs_.batches = &reg.counter("serve.batches_flushed");
  obs_.full_flushes = &reg.counter("serve.full_flushes");
  obs_.deadline_flushes = &reg.counter("serve.deadline_flushes");
  obs_.oversize = &reg.counter("serve.oversize_admitted");
  obs_.queue_depth = &reg.gauge("serve.queue_depth_rows");
  obs_.latency_us = &reg.histogram("serve.latency_us");
  obs_.batch_rows =
      &reg.histogram("serve.batch_rows", obs::default_size_buckets());
  dispatcher_ = std::thread([this] { run(); });
}

PredictionService::~PredictionService() {
  {
    std::unique_lock lock(mutex_);
    stop_ = true;
    work_ready_.notify_all();
    space_free_.notify_all();
    // Producers blocked in submit() wake, fail their promise with
    // service_stopped_error, and leave. Wait them out before joining: once
    // this returns, no producer will touch our members again.
    idle_.wait(lock, [&] { return blocked_enqueues_ == 0; });
  }
  dispatcher_.join();
}

std::future<std::vector<double>> PredictionService::enqueue(
    const table::Table& rows, bool blocking, Admission& outcome,
    Deadline deadline) {
  // Schema validation and dictionary re-encode happen here, in the caller's
  // thread: a bad table throws before touching the queue, and the dispatcher
  // only ever sees scoreable Datasets.
  Request req{make_scoring_dataset(rows, meta_.schema), {}, {}, 0, deadline};
  const std::size_t n = req.rows.num_rows();
  std::future<std::vector<double>> future = req.result.get_future();

  const auto expired = [&] {
    return deadline.has_value() && std::chrono::steady_clock::now() >= *deadline;
  };
  const auto fail_expired = [&](std::unique_lock<std::mutex>& lock) {
    // An already-dead request must never consume a queue slot or a batch
    // slot: count it (under the lock, so snapshots stay consistent), fail
    // the caller-held future, and keep latency_us count == completed.
    ++stats_.requests_deadline_exceeded;
    obs_.deadline_exceeded->add();
    outcome = Admission::kDeadlineExpired;
    lock.unlock();
    req.result.set_exception(std::make_exception_ptr(deadline_exceeded_error(
        "request deadline expired before the service could admit it")));
    return std::move(future);
  };

  std::unique_lock lock(mutex_);
  if (!stop_ && expired()) return fail_expired(lock);
  const auto has_room = [&] {
    return pending_rows_ == 0 || pending_rows_ + n <= config_.max_queue_rows;
  };
  if (!blocking && !stop_ && !has_room()) {
    ++stats_.requests_rejected;
    obs_.rejected->add();
    outcome = Admission::kRejected;
    return future;
  }
  if (blocking && !stop_) {
    // Guarded wait: the destructor counts us and will not tear down the
    // mutex/cv while we are inside (or on our way out of) this block.
    ++blocked_enqueues_;
    stats_.blocked_submits = blocked_enqueues_;
    bool admitted_in_time = true;
    if (deadline.has_value()) {
      // Backpressure respects the deadline: parking a caller past the moment
      // its answer stopped mattering just converts overload into zombies.
      admitted_in_time =
          space_free_.wait_until(lock, *deadline, [&] { return stop_ || has_room(); });
    } else {
      space_free_.wait(lock, [&] { return stop_ || has_room(); });
    }
    --blocked_enqueues_;
    stats_.blocked_submits = blocked_enqueues_;
    if (blocked_enqueues_ == 0) idle_.notify_all();  // under lock: cv outlives us
    if (!stop_ && !admitted_in_time) return fail_expired(lock);
  }
  if (stop_) {
    // Shutdown raced this submission. The promise is still local to this
    // frame, so fail it with a typed error — the caller's future resolves,
    // never abandons. Stats tick under the lock we already hold.
    ++stats_.requests_stopped;
    obs_.stopped->add();
    outcome = Admission::kStopped;
    lock.unlock();
    req.result.set_exception(std::make_exception_ptr(service_stopped_error(
        "PredictionService stopped before the request was admitted")));
    return future;
  }

  req.enqueued = std::chrono::steady_clock::now();
  req.sequence = ++next_sequence_;
  pending_.push_back(std::move(req));
  pending_rows_ += n;
  ++stats_.requests_admitted;
  obs_.admitted->add();
  if (n > config_.max_queue_rows) {
    // Admitted only because the queue was empty; worth counting — one such
    // request monopolizes the queue until scored.
    ++stats_.oversize_admitted;
    obs_.oversize->add();
  }
  stats_.queue_depth_rows = pending_rows_;
  obs_.queue_depth->set(static_cast<double>(pending_rows_));
  stats_.peak_queue_rows = std::max<std::uint64_t>(stats_.peak_queue_rows,
                                                   pending_rows_);
  outcome = Admission::kAdmitted;
  // Notify BEFORE releasing the mutex: once a formerly-blocked producer has
  // decremented blocked_enqueues_, the destructor may tear the service down
  // the moment we release — a notify after unlock would poke a dead cv.
  // Holding the lock blocks the destructor (it must acquire mutex_) until
  // this thread is provably done with the members.
  work_ready_.notify_all();
  lock.unlock();
  return future;
}

std::future<std::vector<double>> PredictionService::submit(const table::Table& rows,
                                                           Deadline deadline) {
  Admission outcome = Admission::kRejected;
  return enqueue(rows, /*blocking=*/true, outcome, deadline);
}

std::optional<std::future<std::vector<double>>> PredictionService::try_submit(
    const table::Table& rows, Deadline deadline) {
  Admission outcome = Admission::kRejected;
  auto future = enqueue(rows, /*blocking=*/false, outcome, deadline);
  // Backpressure is the only nullopt: it invites a retry. A stopped service
  // or an expired deadline hands back the pre-failed future — retrying those
  // here can never succeed.
  if (outcome == Admission::kRejected) return std::nullopt;
  return future;
}

std::vector<double> PredictionService::score(const table::Table& rows) {
  return submit(rows).get();
}

void PredictionService::flush() {
  std::unique_lock lock(mutex_);
  const std::uint64_t target = next_sequence_;
  flush_requested_ = true;
  work_ready_.notify_all();
  drained_.wait(lock, [&] { return completed_sequence_ >= target; });
  if (pending_.empty()) flush_requested_ = false;
}

ServiceStats PredictionService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void PredictionService::run() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;  // drained; nothing can arrive after stop_
      continue;
    }
    // Micro-batching: sleep until the oldest request's deadline unless the
    // batch fills (or a flush/stop forces the issue) first.
    const auto deadline = pending_.front().enqueued + config_.max_batch_delay;
    work_ready_.wait_until(lock, deadline, [&] {
      return stop_ || flush_requested_ ||
             pending_rows_ >= config_.max_batch_rows;
    });
    if (pending_.empty()) continue;  // a racing flush drained the queue

    // Full flush: peel off max_batch_rows worth of requests; the remainder
    // keeps its place in line. Deadline/drain flush: take everything.
    const bool full = pending_rows_ >= config_.max_batch_rows;
    std::vector<Request> batch;
    std::size_t batch_rows = 0;
    while (!pending_.empty()) {
      if (full && !batch.empty() && batch_rows >= config_.max_batch_rows) break;
      batch_rows += pending_.front().rows.num_rows();
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    pending_rows_ -= batch_rows;
    stats_.queue_depth_rows = pending_rows_;
    obs_.queue_depth->set(static_cast<double>(pending_rows_));
    ++stats_.batches_flushed;
    obs_.batches->add();
    obs_.batch_rows->observe(static_cast<double>(batch_rows));
    if (full) {
      ++stats_.full_flushes;
      obs_.full_flushes->add();
    } else {
      ++stats_.deadline_flushes;
      obs_.deadline_flushes->add();
    }
    lock.unlock();
    space_free_.notify_all();
    score_batch(std::move(batch), !full);
    lock.lock();
    if (pending_.empty() && flush_requested_) flush_requested_ = false;
  }
}

void PredictionService::score_batch(std::vector<Request> batch,
                                    bool /*deadline_flush*/) {
  for (Request& req : batch) {
    const std::size_t n = req.rows.num_rows();
    std::vector<double> result;
    std::exception_ptr error;
    // A request whose deadline lapsed while it waited in the queue is failed,
    // not scored: the caller's budget is spent, and under overload the batch
    // slot is better given to a request someone is still waiting for.
    const bool expired =
        req.deadline.has_value() &&
        std::chrono::steady_clock::now() >= *req.deadline;
    if (expired) {
      error = std::make_exception_ptr(deadline_exceeded_error(
          "request deadline expired while queued; not scored"));
    } else {
      try {
        // Forest::predict fans the rows across the shared pool; its output is
        // bit-identical at any thread count and does not depend on what else
        // is in the batch, so batching is pure scheduling.
        result = forest_->predict(req.rows, config_.scorer);
      } catch (...) {
        error = std::current_exception();
      }
    }
    const std::uint64_t latency = elapsed_us(req.enqueued);
    {
      // Counters first, fulfillment second: a caller who has seen its future
      // resolve is guaranteed to find its request in the stats() snapshot —
      // and the obs latency histogram observe shares this critical section,
      // so snapshot consistency (histogram count == completed counter) holds
      // for the registry too.
      std::lock_guard lock(mutex_);
      if (expired) {
        ++stats_.requests_deadline_exceeded;
        obs_.deadline_exceeded->add();
      } else if (error == nullptr) {
        ++stats_.requests_completed;
        stats_.rows_scored += n;
        stats_.total_latency_us += latency;
        stats_.max_latency_us = std::max(stats_.max_latency_us, latency);
        obs_.completed->add();
        obs_.rows_scored->add(n);
        obs_.latency_us->observe(static_cast<double>(latency));
      } else {
        ++stats_.requests_failed;
        obs_.failed->add();
      }
    }
    // Fulfillment must not be able to kill the dispatcher: set_value can
    // throw (e.g. std::future_error if a promise was somehow satisfied, or
    // bad_alloc moving the payload). Convert to set_exception; if even that
    // fails the promise was already satisfied and the caller has a result.
    try {
      if (error != nullptr) {
        req.result.set_exception(error);
      } else {
        req.result.set_value(std::move(result));
      }
    } catch (...) {
      try {
        req.result.set_exception(std::current_exception());
      } catch (...) {
        // Promise already satisfied — nothing left to deliver.
      }
    }
    {
      // The flush() gate advances only after the future is fulfilled, so
      // flush() keeps its promise that drained futures are ready.
      std::lock_guard lock(mutex_);
      completed_sequence_ = req.sequence;
    }
    drained_.notify_all();
  }
}

}  // namespace rainshine::serve
