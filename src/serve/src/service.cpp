#include "rainshine/serve/service.hpp"

#include <algorithm>

#include "rainshine/util/check.hpp"

namespace rainshine::serve {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point since) {
  const auto d = std::chrono::steady_clock::now() - since;
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  return us < 0 ? 0 : static_cast<std::uint64_t>(us);
}

}  // namespace

std::string ServiceStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%llu req (%llu rejected, %llu failed), %llu rows in %llu "
                "batches (%llu full, %llu deadline), peak queue %llu rows, "
                "latency mean %.1fus max %lluus",
                static_cast<unsigned long long>(requests_admitted),
                static_cast<unsigned long long>(requests_rejected),
                static_cast<unsigned long long>(requests_failed),
                static_cast<unsigned long long>(rows_scored),
                static_cast<unsigned long long>(batches_flushed),
                static_cast<unsigned long long>(full_flushes),
                static_cast<unsigned long long>(deadline_flushes),
                static_cast<unsigned long long>(peak_queue_rows),
                mean_latency_us(),
                static_cast<unsigned long long>(max_latency_us));
  return buf;
}

PredictionService::PredictionService(ModelArtifact artifact, ServiceConfig config)
    : meta_(std::move(artifact.meta)),
      forest_(std::move(artifact.forest)),
      config_(config) {
  util::require(forest_ != nullptr, "PredictionService needs a forest");
  util::require(!meta_.schema.empty(), "PredictionService needs a feature schema");
  util::require(config_.max_batch_rows > 0, "max_batch_rows must be positive");
  util::require(config_.max_queue_rows >= config_.max_batch_rows,
                "max_queue_rows must be at least max_batch_rows");
  dispatcher_ = std::thread([this] { run(); });
}

PredictionService::~PredictionService() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  space_free_.notify_all();
  dispatcher_.join();
}

std::future<std::vector<double>> PredictionService::enqueue(
    const table::Table& rows, bool blocking, bool& admitted) {
  // Schema validation and dictionary re-encode happen here, in the caller's
  // thread: a bad table throws before touching the queue, and the dispatcher
  // only ever sees scoreable Datasets.
  Request req{make_scoring_dataset(rows, meta_.schema), {}, {}, 0};
  const std::size_t n = req.rows.num_rows();
  std::future<std::vector<double>> future = req.result.get_future();

  std::unique_lock lock(mutex_);
  const auto has_room = [&] {
    return pending_rows_ == 0 || pending_rows_ + n <= config_.max_queue_rows;
  };
  if (!blocking && !stop_ && !has_room()) {
    ++stats_.requests_rejected;
    admitted = false;
    return future;
  }
  if (blocking) {
    space_free_.wait(lock, [&] { return stop_ || has_room(); });
  }
  util::require(!stop_, "PredictionService is shutting down");

  req.enqueued = std::chrono::steady_clock::now();
  req.sequence = ++next_sequence_;
  pending_.push_back(std::move(req));
  pending_rows_ += n;
  ++stats_.requests_admitted;
  stats_.queue_depth_rows = pending_rows_;
  stats_.peak_queue_rows = std::max<std::uint64_t>(stats_.peak_queue_rows,
                                                   pending_rows_);
  admitted = true;
  lock.unlock();
  work_ready_.notify_all();
  return future;
}

std::future<std::vector<double>> PredictionService::submit(const table::Table& rows) {
  bool admitted = false;
  return enqueue(rows, /*blocking=*/true, admitted);
}

std::optional<std::future<std::vector<double>>> PredictionService::try_submit(
    const table::Table& rows) {
  bool admitted = false;
  auto future = enqueue(rows, /*blocking=*/false, admitted);
  if (!admitted) return std::nullopt;
  return future;
}

std::vector<double> PredictionService::score(const table::Table& rows) {
  return submit(rows).get();
}

void PredictionService::flush() {
  std::unique_lock lock(mutex_);
  const std::uint64_t target = next_sequence_;
  flush_requested_ = true;
  work_ready_.notify_all();
  drained_.wait(lock, [&] { return completed_sequence_ >= target; });
  if (pending_.empty()) flush_requested_ = false;
}

ServiceStats PredictionService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void PredictionService::run() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;  // drained; nothing can arrive after stop_
      continue;
    }
    // Micro-batching: sleep until the oldest request's deadline unless the
    // batch fills (or a flush/stop forces the issue) first.
    const auto deadline = pending_.front().enqueued + config_.max_batch_delay;
    work_ready_.wait_until(lock, deadline, [&] {
      return stop_ || flush_requested_ ||
             pending_rows_ >= config_.max_batch_rows;
    });
    if (pending_.empty()) continue;  // a racing flush drained the queue

    // Full flush: peel off max_batch_rows worth of requests; the remainder
    // keeps its place in line. Deadline/drain flush: take everything.
    const bool full = pending_rows_ >= config_.max_batch_rows;
    std::vector<Request> batch;
    std::size_t batch_rows = 0;
    while (!pending_.empty()) {
      if (full && !batch.empty() && batch_rows >= config_.max_batch_rows) break;
      batch_rows += pending_.front().rows.num_rows();
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    pending_rows_ -= batch_rows;
    stats_.queue_depth_rows = pending_rows_;
    ++stats_.batches_flushed;
    if (full) {
      ++stats_.full_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    lock.unlock();
    space_free_.notify_all();
    score_batch(std::move(batch), !full);
    lock.lock();
    if (pending_.empty() && flush_requested_) flush_requested_ = false;
  }
}

void PredictionService::score_batch(std::vector<Request> batch,
                                    bool /*deadline_flush*/) {
  for (Request& req : batch) {
    const std::size_t n = req.rows.num_rows();
    std::vector<double> result;
    std::exception_ptr error;
    try {
      // Forest::predict fans the rows across the shared pool; its output is
      // bit-identical at any thread count and does not depend on what else
      // is in the batch, so batching is pure scheduling.
      result = forest_->predict(req.rows);
    } catch (...) {
      error = std::current_exception();
    }
    const std::uint64_t latency = elapsed_us(req.enqueued);
    {
      // Counters first, fulfillment second: a caller who has seen its future
      // resolve is guaranteed to find its request in the stats() snapshot.
      std::lock_guard lock(mutex_);
      if (error == nullptr) {
        ++stats_.requests_completed;
        stats_.rows_scored += n;
        stats_.total_latency_us += latency;
        stats_.max_latency_us = std::max(stats_.max_latency_us, latency);
      } else {
        ++stats_.requests_failed;
      }
    }
    if (error != nullptr) {
      req.result.set_exception(error);
    } else {
      req.result.set_value(std::move(result));
    }
    {
      // The flush() gate advances only after the future is fulfilled, so
      // flush() keeps its promise that drained futures are ready.
      std::lock_guard lock(mutex_);
      completed_sequence_ = req.sequence;
    }
    drained_.notify_all();
  }
}

}  // namespace rainshine::serve
