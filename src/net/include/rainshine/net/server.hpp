// HttpServer: the hardened wire front-end over serve::PredictionService.
//
// Thread shape: one acceptor thread feeding a BOUNDED queue of accepted
// connections, drained by a fixed pool of worker threads. Every resource a
// client can consume has an explicit ceiling and an explicit overflow
// behaviour:
//
//   connection queue full   → immediate 503 + Retry-After, connection closed
//                             (load shedding — the server stays responsive
//                             past saturation instead of building unbounded
//                             backlog; shed count in net.connections_shed)
//   scoring queue full      → 503 + Retry-After from the /score handler
//                             (the PredictionService's own admission bound)
//   slow/stalled peer       → SO_RCVTIMEO/SO_SNDTIMEO expire; 408 where a
//                             reply is possible; worker thread freed either
//                             way (slow-loris defense)
//   oversized/malformed     → typed RequestError → 4xx/5xx via status_for,
//                             parsing bounded by HttpLimits at every step
//   per-request deadline    → X-Deadline-Ms (capped) or the configured
//                             default, propagated into the service; expiry
//                             anywhere along the path is a 504
//
// Endpoints:
//   POST /score    CSV rows in, CSV predictions out (schema-checked; 422 on
//                  mismatch, 400 on unparseable CSV)
//   GET  /models   JSON: serving model + registry catalogue (with swap
//                  generation + registration timestamps) + drain state
//   GET  /metrics  obs::registry() exposition (text, ?format=json for JSON)
//   GET  /series   ring-store time series (JSON; bounded typed query
//                  parsing; 404 unless a SeriesStore was attached)
//   GET  /healthz  "ok" / "draining"
//
// Hot-swap: swap_service() atomically replaces the PredictionService behind
// /score. Every request snapshots the shared_ptr once, so in-flight requests
// finish on the service (and model artifact) they started with while new
// requests see the replacement — the same pinning contract as
// ModelRegistry::put.
//
// Drain state machine (SIGTERM path):
//
//   kServing --request_drain()--> kDraining --workers idle--> kStopped
//
// request_drain() is async-signal-safe (one atomic store + one self-pipe
// write): call it straight from a SIGTERM handler. The acceptor wakes, the
// listener closes (new connections are refused by the kernel), queued and
// in-flight requests finish — every admitted request gets its response,
// keep-alive connections are answered `Connection: close` — then workers
// exit and wait() returns so the process can flush its metrics sidecar and
// exit 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rainshine/net/http.hpp"
#include "rainshine/net/socket.hpp"
#include "rainshine/obs/metrics.hpp"
#include "rainshine/serve/registry.hpp"
#include "rainshine/serve/service.hpp"
#include "rainshine/stream/store.hpp"

namespace rainshine::net {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
  std::size_t num_workers = 4;
  /// Accepted connections waiting for a worker. Beyond this, shed.
  std::size_t max_pending_connections = 64;
  HttpLimits limits;
  std::chrono::milliseconds read_timeout{5000};   ///< slow-loris bound
  std::chrono::milliseconds write_timeout{5000};  ///< unresponsive-reader bound
  /// Scoring budget when the client sends no X-Deadline-Ms.
  std::chrono::milliseconds default_deadline{2000};
  /// Hard cap on client-requested deadlines.
  std::chrono::milliseconds max_deadline{30000};
  /// Retry-After value on every 503 (shed and drain alike).
  int retry_after_seconds = 1;
};

class HttpServer {
 public:
  /// Binds and starts serving immediately. `registry` may be null (then
  /// /models lists only the serving model); `series` may be null (then
  /// /series answers 404). Both are borrowed and must outlive the server.
  /// The server shares ownership of the service so hot-swapping callers can
  /// drop theirs.
  HttpServer(std::shared_ptr<serve::PredictionService> service,
             serve::ModelRegistry* registry, ServerConfig config = {},
             const stream::SeriesStore* series = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Atomically replaces the service behind /score. In-flight requests keep
  /// the snapshot they took; the old service (and the model it pins) is
  /// destroyed when the last of them finishes. Thread-safe.
  void swap_service(std::shared_ptr<serve::PredictionService> next);

  /// The current service snapshot (what a request arriving now would use).
  [[nodiscard]] std::shared_ptr<serve::PredictionService> service() const;

  /// Starts a graceful drain. Async-signal-safe and idempotent — designed
  /// to be called from a SIGTERM/SIGINT handler.
  void request_drain() noexcept;

  /// Blocks until the drain completes (acceptor and workers joined). Returns
  /// immediately if already stopped. Calling wait() without request_drain()
  /// blocks until someone else initiates one.
  void wait();

  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

 private:
  /// Stable obs::registry() handles (see serve::PredictionService::ObsHandles).
  struct ObsHandles {
    obs::Counter* accepted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* responses_2xx = nullptr;
    obs::Counter* responses_4xx = nullptr;
    obs::Counter* responses_5xx = nullptr;
    obs::Counter* parse_errors = nullptr;
    obs::Counter* score_shed = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* io_errors = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* draining = nullptr;
    obs::Histogram* request_us = nullptr;
  };

  void accept_loop();
  void worker_loop();
  void serve_connection(TcpSocket sock);
  [[nodiscard]] HttpResponse route(const HttpRequest& req);
  [[nodiscard]] HttpResponse handle_score(const HttpRequest& req);
  [[nodiscard]] HttpResponse handle_models() const;
  [[nodiscard]] HttpResponse handle_metrics(const HttpRequest& req) const;
  [[nodiscard]] HttpResponse handle_series(const HttpRequest& req) const;
  [[nodiscard]] HttpResponse shed_response() const;

  mutable std::mutex service_mutex_;  ///< guards service_ swap/snapshot only
  std::shared_ptr<serve::PredictionService> service_;
  serve::ModelRegistry* registry_;
  const stream::SeriesStore* series_;
  ServerConfig config_;
  TcpListener listener_;
  ObsHandles obs_;

  std::atomic<bool> draining_{false};

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<TcpSocket> pending_;
  bool accept_done_ = false;  ///< acceptor exited; workers drain then stop

  std::mutex join_mutex_;  ///< serializes wait(); never held with mutex_
  bool joined_ = false;    ///< wait() already reaped the threads

  std::vector<std::thread> workers_;
  std::thread acceptor_;  ///< last member: started after state is ready
};

}  // namespace rainshine::net
