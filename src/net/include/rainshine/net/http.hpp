// Bounded, typed HTTP/1.1 message parsing — the wire grammar of src/net.
//
// The parser is written for hostile input first: every dimension of a
// request is bounded up front (request-line bytes, total header bytes,
// header count, body bytes), every violation is a typed RequestError that
// maps to a specific status code, and no input — truncated at any byte,
// mutated at any byte — may crash, hang, or allocate beyond the configured
// limits. tests/net/test_http_fuzz.cpp holds the parser to exactly that
// contract under ASan/UBSan, the same way the .rsf artifact loader is
// fuzzed.
//
// Scope (deliberate): HTTP/1.0 and 1.1, identity bodies framed by
// Content-Length only. Transfer-Encoding (chunked) is refused with a typed
// error (501), not half-implemented. Responses always carry Content-Length,
// so the client side (read_response) needs nothing more either.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rainshine/net/stream.hpp"

namespace rainshine::net {

/// Hard ceilings on request size. Defaults fit the scoring workload (CSV
/// bodies of a few thousand rows); tighten them at the server config level.
struct HttpLimits {
  std::size_t max_request_line = 4096;
  std::size_t max_header_bytes = 16384;  ///< all header lines together
  std::size_t max_headers = 64;
  std::size_t max_body_bytes = 4u << 20;
};

struct HttpHeader {
  std::string name;
  std::string value;
};

/// Why a request could not be read. Everything except kNone/kClosed is a
/// protocol or transport defect; status_for() maps each to the reply code.
enum class RequestError : std::uint8_t {
  kNone = 0,
  kClosed,           ///< orderly EOF before the first byte (clean keep-alive end)
  kTimeout,          ///< socket timeout mid-request (slow-loris)
  kReset,            ///< connection reset mid-request
  kIoError,          ///< other transport failure
  kRequestLineTooLong,
  kMalformedRequestLine,
  kUnsupportedVersion,
  kHeaderTooLarge,
  kTooManyHeaders,
  kMalformedHeader,
  kBadContentLength,
  kUnsupportedEncoding,  ///< Transfer-Encoding present
  kBodyTooLarge,
  kIncompleteBody,   ///< EOF/short stream before Content-Length bytes arrived
};

[[nodiscard]] constexpr std::string_view to_string(RequestError e) noexcept {
  switch (e) {
    case RequestError::kNone: return "ok";
    case RequestError::kClosed: return "closed";
    case RequestError::kTimeout: return "timeout";
    case RequestError::kReset: return "reset";
    case RequestError::kIoError: return "io-error";
    case RequestError::kRequestLineTooLong: return "request-line-too-long";
    case RequestError::kMalformedRequestLine: return "malformed-request-line";
    case RequestError::kUnsupportedVersion: return "unsupported-version";
    case RequestError::kHeaderTooLarge: return "header-too-large";
    case RequestError::kTooManyHeaders: return "too-many-headers";
    case RequestError::kMalformedHeader: return "malformed-header";
    case RequestError::kBadContentLength: return "bad-content-length";
    case RequestError::kUnsupportedEncoding: return "unsupported-encoding";
    case RequestError::kBodyTooLarge: return "body-too-large";
    case RequestError::kIncompleteBody: return "incomplete-body";
  }
  return "?";
}

/// The HTTP status a server should answer this parse failure with; 0 means
/// the connection is not worth (or not capable of) an answer — close it.
[[nodiscard]] int status_for(RequestError e) noexcept;

struct HttpRequest {
  std::string method;
  std::string target;  ///< as received: path plus optional ?query
  std::string path;    ///< target up to '?'
  std::string query;   ///< after '?', possibly empty
  int version_minor = 1;  ///< HTTP/1.<n>
  std::vector<HttpHeader> headers;
  std::string body;

  /// Case-insensitive single-header lookup (first match).
  [[nodiscard]] std::optional<std::string_view> header(
      std::string_view name) const noexcept;
  /// Value of `key` in the query string ("a=1&b=2"); unescaping is NOT
  /// performed (the API's parameter values are plain tokens).
  [[nodiscard]] std::optional<std::string_view> query_param(
      std::string_view key) const noexcept;
  /// HTTP/1.1 defaults to keep-alive, 1.0 to close; Connection overrides.
  [[nodiscard]] bool keep_alive() const noexcept;
};

struct RequestOutcome {
  RequestError error = RequestError::kNone;
  HttpRequest request;
  [[nodiscard]] bool ok() const noexcept { return error == RequestError::kNone; }
};

/// Incremental request reader over a Stream. Owns the read buffer so bytes
/// that arrive beyond one request (pipelining) carry over to the next
/// next() call — one reader per connection.
class RequestReader {
 public:
  explicit RequestReader(Stream& stream, HttpLimits limits = {});
  ~RequestReader();
  RequestReader(RequestReader&&) noexcept;
  RequestReader& operator=(RequestReader&&) noexcept;

  /// Reads exactly one request. On error the connection should be answered
  /// with status_for(error) (if nonzero) and closed.
  [[nodiscard]] RequestOutcome next();

 private:
  struct Impl;  ///< buffered line source, shared with read_response
  std::unique_ptr<Impl> impl_;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::vector<HttpHeader> headers;  ///< extras (Retry-After, ...)
  std::string body;

  /// Full wire form incl. Content-Length and Connection header.
  [[nodiscard]] std::string serialize(bool keep_alive) const;
};

[[nodiscard]] std::string_view reason_phrase(int status) noexcept;

/// Client side: one response read off a Stream. Bodies are framed by
/// Content-Length (absent => read to EOF, bounded by limits.max_body_bytes).
struct ResponseOutcome {
  RequestError error = RequestError::kNone;  ///< same taxonomy as requests
  int status = 0;
  std::vector<HttpHeader> headers;
  std::string body;
  [[nodiscard]] bool ok() const noexcept { return error == RequestError::kNone; }
  [[nodiscard]] std::optional<std::string_view> header(
      std::string_view name) const noexcept;
};

[[nodiscard]] ResponseOutcome read_response(Stream& stream,
                                            const HttpLimits& limits = {});

}  // namespace rainshine::net
