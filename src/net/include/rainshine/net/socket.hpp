// Blocking TCP sockets with timeouts — the only file that touches POSIX.
//
// Design constraints, all robustness-driven:
//
//  * Every socket carries read/write timeouts (SO_RCVTIMEO / SO_SNDTIMEO):
//    a peer that stops sending mid-request (slow-loris) or stops draining
//    its receive window costs a bounded slice of one worker thread, never
//    the thread itself.
//  * Writes use MSG_NOSIGNAL: a peer that closed early must surface as a
//    typed io_error in the writer, not a process-killing SIGPIPE.
//  * abort() arms SO_LINGER{on,0} before close, turning teardown into a TCP
//    RST — both so the server can shed hopeless connections without holding
//    TIME_WAIT state, and so the chaos layer can inject the resets real
//    fleets see.
//  * TcpListener::interrupt() is async-signal-safe (one write() to a
//    self-pipe), which is what lets a SIGTERM handler start a graceful
//    drain without taking any lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "rainshine/net/stream.hpp"

namespace rainshine::net {

/// A connected TCP socket. Move-only; closes on destruction.
class TcpSocket final : public Stream {
 public:
  TcpSocket() noexcept = default;           ///< invalid (fd -1)
  explicit TcpSocket(int fd) noexcept : fd_(fd) {}  ///< adopts `fd`
  ~TcpSocket() override { close(); }

  TcpSocket(TcpSocket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpSocket& operator=(TcpSocket&& other) noexcept;
  TcpSocket(const TcpSocket&) = delete;
  TcpSocket& operator=(const TcpSocket&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost") within
  /// `timeout`. Throws io_error on refusal/timeout.
  [[nodiscard]] static TcpSocket connect(const std::string& host,
                                         std::uint16_t port,
                                         std::chrono::milliseconds timeout);

  /// A blocked read/write returns io_error(kTimeout) after this long.
  /// Zero means wait forever.
  void set_read_timeout(std::chrono::milliseconds timeout);
  void set_write_timeout(std::chrono::milliseconds timeout);

  std::size_t read_some(std::span<char> buf) override;
  std::size_t write_some(std::span<const char> buf) override;

  /// Abortive close: SO_LINGER{on,0} then close → the peer sees RST.
  void abort() noexcept override;
  /// Orderly close. Idempotent.
  void close() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to host:port (port 0 picks an ephemeral
/// port; read it back with port()).
class TcpListener {
 public:
  TcpListener(const std::string& host, std::uint16_t port, int backlog = 128);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Blocks until a connection arrives (returns it) or interrupt() was
  /// called (returns nullopt, and every later call returns nullopt too).
  /// Transient accept failures (peer vanished between SYN and accept) are
  /// retried internally.
  [[nodiscard]] std::optional<TcpSocket> accept();

  /// Wakes accept() permanently. Async-signal-safe: one write() on a
  /// pre-opened self-pipe, no locks, no allocation — callable from a
  /// SIGTERM handler.
  void interrupt() noexcept;

  /// Closes the listening socket. interrupt() only wakes accept(); the
  /// kernel keeps completing handshakes into the backlog while the fd is
  /// open, so a draining server must also close() to make new connects be
  /// refused. Idempotent; must not race accept() (close after the accept
  /// loop has exited).
  void close() noexcept;

 private:
  int fd_ = -1;
  int wake_rd_ = -1;  ///< self-pipe read end, polled alongside fd_
  int wake_wr_ = -1;  ///< self-pipe write end, poked by interrupt()
  std::uint16_t port_ = 0;
};

}  // namespace rainshine::net
