// Open-loop HTTP load generator — the measurement half of the wire layer.
//
// Closed-loop clients (send, wait, send) slow down exactly when the server
// does, hiding the queueing delay users feel (coordinated omission). This
// generator is open-loop: request k is DUE at start + k/rps whether or not
// request k-1 has returned, and a request's latency is measured from its
// scheduled due time — so a server that stalls for 100ms owes that 100ms to
// every request scheduled during the stall.
//
// The retry policy is the one the ISSUE prescribes for honest overload
// behaviour: a 503 (shed) or transport failure is retried with capped
// exponential backoff + jitter up to max_retries; any other non-2xx is a
// terminal failure for that tick. Shed responses are counted separately so a
// sweep can report shed rate next to p99.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "rainshine/net/http.hpp"

namespace rainshine::net {

/// One request/response exchange on a fresh connection. The building block
/// of both the load generator and scripted smoke checks (check.sh
/// --net-smoke uses rainshine_loadgen --once instead of curl).
[[nodiscard]] ResponseOutcome request_once(
    const std::string& host, std::uint16_t port, const std::string& method,
    const std::string& target, std::string_view body = {},
    std::span<const HttpHeader> extra_headers = {},
    std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// CSV body POSTed to /score each tick.
  std::string body;
  double rps = 100.0;
  std::chrono::milliseconds duration{1000};
  std::size_t num_threads = 2;  ///< ticks are striped across threads
  /// X-Deadline-Ms header; nullopt sends none (server default applies).
  std::optional<long long> deadline_ms;
  /// Retries per tick on 503/transport error; capped exponential backoff.
  int max_retries = 3;
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{200};
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds io_timeout{5000};
  std::uint64_t seed = 42;  ///< backoff jitter
};

struct LoadGenReport {
  std::uint64_t scheduled = 0;      ///< ticks due within the duration
  std::uint64_t attempts = 0;       ///< requests sent, retries included
  std::uint64_t ok = 0;             ///< ticks that ended 2xx
  std::uint64_t shed = 0;           ///< 503 responses observed (pre-retry)
  std::uint64_t deadline_hits = 0;  ///< 504 responses observed
  std::uint64_t failed = 0;         ///< ticks that exhausted retries / hard 4xx/5xx
  std::uint64_t transport_errors = 0;  ///< resets/timeouts/refusals observed

  /// Latency of successful ticks, measured from the tick's DUE time
  /// (open-loop: server-induced queueing counts).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;

  double shed_rate = 0.0;     ///< shed / attempts
  double achieved_rps = 0.0;  ///< ok / wall-clock

  /// Flat JSON object for bench output and CLI consumption.
  [[nodiscard]] std::string to_json() const;
};

/// Runs the configured open-loop load against POST /score and blocks until
/// every scheduled tick resolved. Requires rps > 0, num_threads > 0.
[[nodiscard]] LoadGenReport run_load(const LoadGenConfig& config);

}  // namespace rainshine::net
