// Byte-stream abstraction under the wire layer.
//
// The HTTP front-end never talks to a file descriptor directly: every byte
// moves through a `Stream`, so the same parser/server code runs over a real
// TCP socket (socket.hpp), an in-memory buffer (MemoryStream — the fuzz
// suite's substrate) or a fault-injecting wrapper (fault.hpp) that turns a
// healthy peer into the misbehaving clients Meza et al. catalogue in real
// datacenters. Robustness code that is only exercised against well-behaved
// kernels is robustness code that has never run; the Stream seam is what
// lets the chaos suite run it on every commit.
//
// Error model: read_some/write_some report orderly EOF as a 0 return and
// everything else as a typed `io_error` (reset / timeout / closed / other).
// Partial progress is normal — both calls may move fewer bytes than asked —
// and callers must loop (write_all does). This mirrors POSIX semantics so a
// FaultySocket injecting partial I/O is indistinguishable from a busy NIC.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

namespace rainshine::net {

/// Why an I/O call failed.
enum class IoStatus : std::uint8_t {
  kReset = 0,  ///< connection aborted by the peer (ECONNRESET / RST)
  kTimeout,    ///< SO_RCVTIMEO / SO_SNDTIMEO expired (slow peer)
  kClosed,     ///< this endpoint already closed/aborted the stream
  kError,      ///< any other socket-level failure (errno in the message)
};

[[nodiscard]] constexpr std::string_view to_string(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::kReset: return "reset";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kError: return "io-error";
  }
  return "?";
}

/// Thrown by Stream operations on anything other than success or orderly
/// EOF. Catch this (or inspect `status()`) instead of matching messages.
class io_error : public std::runtime_error {
 public:
  io_error(IoStatus status, const std::string& message)
      : std::runtime_error(std::string(to_string(status)) + ": " + message),
        status_(status) {}

  [[nodiscard]] IoStatus status() const noexcept { return status_; }

 private:
  IoStatus status_;
};

class Stream {
 public:
  virtual ~Stream() = default;

  /// Reads 1..buf.size() bytes into `buf`; returns the count, or 0 on
  /// orderly EOF. Throws io_error on reset/timeout/failure.
  [[nodiscard]] virtual std::size_t read_some(std::span<char> buf) = 0;

  /// Writes 1..buf.size() bytes from `buf`; returns the count actually
  /// written (may be short). Throws io_error on reset/timeout/failure.
  [[nodiscard]] virtual std::size_t write_some(std::span<const char> buf) = 0;

  /// Abandons the stream abruptly (RST for TCP). Idempotent, never throws —
  /// this is the "give up on a hopeless peer" path.
  virtual void abort() noexcept = 0;

  /// Loops write_some until every byte of `data` is on the wire.
  void write_all(std::string_view data) {
    std::span<const char> rest(data.data(), data.size());
    while (!rest.empty()) {
      rest = rest.subspan(write_some(rest));
    }
  }
};

/// In-memory Stream: reads come from a scripted input (optionally doled out
/// in bounded chunks, to exercise incremental parsing), writes accumulate in
/// a string. The fuzz and fault-injection unit tests run on this.
class MemoryStream final : public Stream {
 public:
  explicit MemoryStream(std::string input, std::size_t max_chunk = SIZE_MAX)
      : input_(std::move(input)), max_chunk_(max_chunk == 0 ? 1 : max_chunk) {}

  std::size_t read_some(std::span<char> buf) override {
    if (aborted_) throw io_error(IoStatus::kClosed, "MemoryStream aborted");
    if (pos_ >= input_.size()) return 0;  // orderly EOF
    const std::size_t n =
        std::min({buf.size(), input_.size() - pos_, max_chunk_});
    input_.copy(buf.data(), n, pos_);
    pos_ += n;
    return n;
  }

  std::size_t write_some(std::span<const char> buf) override {
    if (aborted_) throw io_error(IoStatus::kClosed, "MemoryStream aborted");
    const std::size_t n = std::min(buf.size(), max_chunk_);
    written_.append(buf.data(), n);
    return n;
  }

  void abort() noexcept override { aborted_ = true; }

  [[nodiscard]] const std::string& written() const noexcept { return written_; }
  [[nodiscard]] bool aborted() const noexcept { return aborted_; }
  [[nodiscard]] std::size_t unread() const noexcept {
    return input_.size() - pos_;
  }

 private:
  std::string input_;
  std::size_t pos_ = 0;
  std::size_t max_chunk_;
  std::string written_;
  bool aborted_ = false;
};

}  // namespace rainshine::net
