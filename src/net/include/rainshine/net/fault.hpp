// FaultySocket: seeded network-fault injection at the Stream seam.
//
// The failure modes are the ones large-scale studies (Meza et al.,
// PAPERS.md) observe on real datacenter networks, scaled down to one
// connection: connections reset mid-exchange, peers that stall for seconds,
// NICs that fragment every transfer, clients that vanish halfway through a
// request body. FaultySocket wraps any Stream and injects these faults from
// a seeded Rng, so a chaos test is a deterministic, replayable scenario —
// "seed 17 resets after the headers" fails the same way every run.
//
// Injection points are per read_some/write_some call, drawn independently:
//   reset_prob       — abort() the inner stream, then throw io_error(kReset)
//   disconnect_prob  — close the inner stream orderly; reads then see EOF,
//                      writes see io_error(kClosed) (a mid-body hangup)
//   stall_prob       — sleep `stall` before the op (tickles peer timeouts)
//   partial I/O      — every op is capped at a chunk drawn from
//                      [1, max_chunk]; exercises short-read/short-write
//                      handling in parsers and writers
//
// A fault plan with all probabilities zero and max_chunk SIZE_MAX is a
// transparent pass-through, so production code can be compiled against the
// wrapper unconditionally.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "rainshine/net/stream.hpp"
#include "rainshine/util/rng.hpp"

namespace rainshine::net {

struct FaultPlan {
  std::uint64_t seed = 0;
  double reset_prob = 0.0;       ///< per-op: RST the connection
  double disconnect_prob = 0.0;  ///< per-op: orderly close mid-stream
  double stall_prob = 0.0;       ///< per-op: sleep `stall` first
  std::chrono::milliseconds stall{0};
  std::size_t max_chunk = SIZE_MAX;  ///< cap bytes moved per op (>= 1)
};

/// Counts of what a FaultySocket actually did — lets a chaos test assert
/// the scenario it asked for really happened.
struct FaultLog {
  std::uint64_t resets = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t stalls = 0;
  std::uint64_t short_ops = 0;  ///< ops truncated by max_chunk
};

class FaultySocket final : public Stream {
 public:
  FaultySocket(std::unique_ptr<Stream> inner, FaultPlan plan);

  std::size_t read_some(std::span<char> buf) override;
  std::size_t write_some(std::span<const char> buf) override;
  void abort() noexcept override;

  [[nodiscard]] const FaultLog& log() const noexcept { return log_; }
  [[nodiscard]] Stream& inner() noexcept { return *inner_; }

 private:
  /// Applies pre-op faults; returns the byte cap for this op.
  std::size_t arm(std::size_t want);

  std::unique_ptr<Stream> inner_;
  FaultPlan plan_;
  util::Rng rng_;
  FaultLog log_;
  bool down_ = false;  ///< a reset/disconnect already fired
};

}  // namespace rainshine::net
