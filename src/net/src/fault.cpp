#include "rainshine/net/fault.hpp"

#include <algorithm>
#include <thread>

#include "rainshine/util/check.hpp"

namespace rainshine::net {

FaultySocket::FaultySocket(std::unique_ptr<Stream> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), rng_(plan.seed) {
  util::require(inner_ != nullptr, "FaultySocket needs an inner stream");
  util::require(plan_.max_chunk >= 1, "FaultPlan::max_chunk must be >= 1");
}

std::size_t FaultySocket::arm(std::size_t want) {
  if (down_) throw io_error(IoStatus::kClosed, "injected fault already fired");
  if (plan_.stall_prob > 0.0 && rng_.bernoulli(plan_.stall_prob)) {
    ++log_.stalls;
    std::this_thread::sleep_for(plan_.stall);
  }
  if (plan_.reset_prob > 0.0 && rng_.bernoulli(plan_.reset_prob)) {
    ++log_.resets;
    down_ = true;
    inner_->abort();
    throw io_error(IoStatus::kReset, "injected connection reset");
  }
  if (plan_.disconnect_prob > 0.0 && rng_.bernoulli(plan_.disconnect_prob)) {
    // Orderly mid-stream hangup: from the peer's side this is a FIN after a
    // partial request — the "client gave up halfway through the body" case.
    ++log_.disconnects;
    down_ = true;
    inner_->abort();
    throw io_error(IoStatus::kClosed, "injected mid-stream disconnect");
  }
  std::size_t cap = want;
  if (plan_.max_chunk < want) {
    // Draw a fresh chunk size per op so fragment boundaries wander across
    // the message — every byte offset eventually becomes a split point.
    cap = 1 + static_cast<std::size_t>(rng_.below(plan_.max_chunk));
    if (cap < want) ++log_.short_ops;
    cap = std::min(cap, want);
  }
  return cap;
}

std::size_t FaultySocket::read_some(std::span<char> buf) {
  if (buf.empty()) return 0;
  const std::size_t cap = arm(buf.size());
  return inner_->read_some(buf.first(cap));
}

std::size_t FaultySocket::write_some(std::span<const char> buf) {
  if (buf.empty()) return 0;
  const std::size_t cap = arm(buf.size());
  return inner_->write_some(buf.first(cap));
}

void FaultySocket::abort() noexcept {
  down_ = true;
  inner_->abort();
}

}  // namespace rainshine::net
