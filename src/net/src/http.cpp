#include "rainshine/net/http.hpp"

#include <algorithm>
#include <cctype>

#include "rainshine/util/strings.hpp"

namespace rainshine::net {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// RFC 9110 token characters — what a method or header name may contain.
bool is_token_char(char c) noexcept {
  const unsigned char u = static_cast<unsigned char>(c);
  if (std::isalnum(u) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) noexcept {
  return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

RequestError from_io(const io_error& e) noexcept {
  switch (e.status()) {
    case IoStatus::kTimeout: return RequestError::kTimeout;
    case IoStatus::kReset: return RequestError::kReset;
    default: return RequestError::kIoError;
  }
}

std::optional<std::string_view> find_header(
    const std::vector<HttpHeader>& headers, std::string_view name) noexcept {
  for (const HttpHeader& h : headers) {
    if (iequals(h.name, name)) return std::string_view(h.value);
  }
  return std::nullopt;
}

/// Buffered line/byte source over a Stream. One instance per connection:
/// bytes read past the current message (pipelining) stay in `buf` for the
/// next message. Every path is bounded by the cap its caller passes.
struct LineSource {
  Stream& stream;
  std::string buf;
  std::size_t pos = 0;

  explicit LineSource(Stream& s) : stream(s) {}

  [[nodiscard]] bool pending() const noexcept { return pos < buf.size(); }

  /// One read_some appended to buf. kClosed = orderly EOF.
  RequestError fill() {
    if (pos == buf.size()) {
      buf.clear();
      pos = 0;
    } else if (pos > 8192) {
      buf.erase(0, pos);
      pos = 0;
    }
    char chunk[4096];
    try {
      const std::size_t n = stream.read_some(chunk);
      if (n == 0) return RequestError::kClosed;
      buf.append(chunk, n);
      return RequestError::kNone;
    } catch (const io_error& e) {
      return from_io(e);
    }
  }

  /// Reads one LF-terminated line (CR stripped) of at most `cap` bytes.
  /// `overflow` is returned when the line exceeds the cap. EOF before the
  /// terminator yields kClosed if nothing of the line arrived, else
  /// kIncompleteBody (the peer hung up mid-line).
  RequestError line(std::size_t cap, std::string& out, RequestError overflow) {
    for (;;) {
      const std::size_t nl = buf.find('\n', pos);
      if (nl != std::string::npos) {
        if (nl - pos > cap) return overflow;
        out.assign(buf, pos, nl - pos);
        if (!out.empty() && out.back() == '\r') out.pop_back();
        pos = nl + 1;
        return RequestError::kNone;
      }
      if (buf.size() - pos > cap) return overflow;
      const RequestError err = fill();
      if (err == RequestError::kClosed) {
        return pending() ? RequestError::kIncompleteBody : RequestError::kClosed;
      }
      if (err != RequestError::kNone) return err;
    }
  }

  /// Reads exactly `n` bytes into `out` (n is pre-validated against the
  /// body cap, so the reserve is bounded).
  RequestError body(std::size_t n, std::string& out) {
    out.clear();
    out.reserve(n);
    for (;;) {
      const std::size_t take = std::min(n - out.size(), buf.size() - pos);
      out.append(buf, pos, take);
      pos += take;
      if (out.size() == n) return RequestError::kNone;
      const RequestError err = fill();
      if (err == RequestError::kClosed) return RequestError::kIncompleteBody;
      if (err != RequestError::kNone) return err;
    }
  }
};

/// Shared header-block reader: parses "Name: value" lines until the blank
/// line, enforcing count and byte limits.
RequestError read_headers(LineSource& src, const HttpLimits& limits,
                          std::vector<HttpHeader>& headers) {
  std::string line;
  std::size_t header_bytes = 0;
  for (;;) {
    const RequestError err =
        src.line(limits.max_header_bytes, line, RequestError::kHeaderTooLarge);
    if (err == RequestError::kClosed) return RequestError::kIncompleteBody;
    if (err != RequestError::kNone) return err;
    if (line.empty()) return RequestError::kNone;
    header_bytes += line.size() + 2;
    if (header_bytes > limits.max_header_bytes) {
      return RequestError::kHeaderTooLarge;
    }
    if (headers.size() >= limits.max_headers) {
      return RequestError::kTooManyHeaders;
    }
    // Obsolete line folding (leading whitespace) is rejected, per RFC 7230's
    // advice for anything that is not a message archive.
    const std::size_t colon = line.find(':');
    if (colon == 0 || colon == std::string::npos ||
        !is_token(std::string_view(line).substr(0, colon))) {
      return RequestError::kMalformedHeader;
    }
    HttpHeader h;
    h.name = line.substr(0, colon);
    h.value = std::string(util::trim(std::string_view(line).substr(colon + 1)));
    headers.push_back(std::move(h));
  }
}

/// Decodes Content-Length / Transfer-Encoding into a body byte count.
RequestError body_length(const std::vector<HttpHeader>& headers,
                         const HttpLimits& limits, std::size_t& length) {
  length = 0;
  if (find_header(headers, "Transfer-Encoding").has_value()) {
    return RequestError::kUnsupportedEncoding;
  }
  bool seen = false;
  for (const HttpHeader& h : headers) {
    if (!iequals(h.name, "Content-Length")) continue;
    const std::string_view v = h.value;
    // Strict decimal: nonempty, digits only, short enough to never overflow.
    if (v.empty() || v.size() > 18 ||
        !std::all_of(v.begin(), v.end(), [](char c) {
          return c >= '0' && c <= '9';
        })) {
      return RequestError::kBadContentLength;
    }
    std::size_t n = 0;
    for (const char c : v) n = n * 10 + static_cast<std::size_t>(c - '0');
    if (seen && n != length) return RequestError::kBadContentLength;
    seen = true;
    length = n;
  }
  if (length > limits.max_body_bytes) return RequestError::kBodyTooLarge;
  return RequestError::kNone;
}

}  // namespace

int status_for(RequestError e) noexcept {
  switch (e) {
    case RequestError::kNone: return 200;
    case RequestError::kTimeout: return 408;
    case RequestError::kRequestLineTooLong: return 414;
    case RequestError::kMalformedRequestLine: return 400;
    case RequestError::kUnsupportedVersion: return 505;
    case RequestError::kHeaderTooLarge: return 431;
    case RequestError::kTooManyHeaders: return 431;
    case RequestError::kMalformedHeader: return 400;
    case RequestError::kBadContentLength: return 400;
    case RequestError::kUnsupportedEncoding: return 501;
    case RequestError::kBodyTooLarge: return 413;
    case RequestError::kIncompleteBody: return 400;
    case RequestError::kClosed:
    case RequestError::kReset:
    case RequestError::kIoError:
      return 0;  // nobody is listening
  }
  return 0;
}

std::optional<std::string_view> HttpRequest::header(
    std::string_view name) const noexcept {
  return find_header(headers, name);
}

std::optional<std::string_view> HttpRequest::query_param(
    std::string_view key) const noexcept {
  for (const std::string_view pair : util::split(query, '&')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      if (pair == key) return std::string_view{};
    } else if (pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return std::nullopt;
}

bool HttpRequest::keep_alive() const noexcept {
  if (const auto conn = header("Connection")) {
    if (iequals(*conn, "close")) return false;
    if (iequals(*conn, "keep-alive")) return true;
  }
  return version_minor >= 1;
}

struct RequestReader::Impl {
  LineSource src;
  HttpLimits limits;
  Impl(Stream& stream, HttpLimits lim) : src(stream), limits(lim) {}
};

RequestReader::RequestReader(Stream& stream, HttpLimits limits)
    : impl_(std::make_unique<Impl>(stream, limits)) {}
RequestReader::~RequestReader() = default;
RequestReader::RequestReader(RequestReader&&) noexcept = default;
RequestReader& RequestReader::operator=(RequestReader&&) noexcept = default;

RequestOutcome RequestReader::next() {
  RequestOutcome out;
  HttpRequest& req = out.request;
  LineSource& src = impl_->src;
  const HttpLimits& limits = impl_->limits;

  // Request line; a little leading-CRLF tolerance per RFC 9112 §2.2.
  std::string line;
  for (int blank = 0;; ++blank) {
    const RequestError err = src.line(limits.max_request_line, line,
                                      RequestError::kRequestLineTooLong);
    if (err != RequestError::kNone) {
      out.error = err;  // incl. the clean kClosed between keep-alive requests
      return out;
    }
    if (!line.empty()) break;
    if (blank >= 2) {
      out.error = RequestError::kMalformedRequestLine;
      return out;
    }
  }

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos) {
    out.error = RequestError::kMalformedRequestLine;
    return out;
  }
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = std::string_view(line).substr(sp2 + 1);
  if (!is_token(req.method) || req.target.empty() || req.target[0] != '/') {
    out.error = RequestError::kMalformedRequestLine;
    return out;
  }
  if (version == "HTTP/1.1") {
    req.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    req.version_minor = 0;
  } else if (version.starts_with("HTTP/")) {
    out.error = RequestError::kUnsupportedVersion;
    return out;
  } else {
    out.error = RequestError::kMalformedRequestLine;
    return out;
  }
  const std::size_t qmark = req.target.find('?');
  req.path = req.target.substr(0, qmark);
  req.query =
      qmark == std::string::npos ? std::string() : req.target.substr(qmark + 1);

  if ((out.error = read_headers(src, limits, req.headers)) !=
      RequestError::kNone) {
    return out;
  }
  std::size_t length = 0;
  if ((out.error = body_length(req.headers, limits, length)) !=
      RequestError::kNone) {
    return out;
  }
  if (length > 0) out.error = src.body(length, req.body);
  return out;
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Status";
  }
}

std::string HttpResponse::serialize(bool keep_alive) const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason_phrase(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const HttpHeader& h : headers) {
    out += h.name;
    out += ": ";
    out += h.value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::optional<std::string_view> ResponseOutcome::header(
    std::string_view name) const noexcept {
  return find_header(headers, name);
}

ResponseOutcome read_response(Stream& stream, const HttpLimits& limits) {
  ResponseOutcome out;
  LineSource src(stream);

  std::string line;
  RequestError err = src.line(limits.max_request_line, line,
                              RequestError::kRequestLineTooLong);
  if (err != RequestError::kNone) {
    out.error = err == RequestError::kClosed ? RequestError::kIncompleteBody : err;
    return out;
  }
  // "HTTP/1.x NNN Reason..."
  const std::size_t sp1 = line.find(' ');
  if (!line.starts_with("HTTP/1.") || sp1 == std::string::npos ||
      line.size() < sp1 + 4 || std::isdigit(static_cast<unsigned char>(
                                   line[sp1 + 1])) == 0 ||
      std::isdigit(static_cast<unsigned char>(line[sp1 + 2])) == 0 ||
      std::isdigit(static_cast<unsigned char>(line[sp1 + 3])) == 0) {
    out.error = RequestError::kMalformedRequestLine;
    return out;
  }
  out.status = (line[sp1 + 1] - '0') * 100 + (line[sp1 + 2] - '0') * 10 +
               (line[sp1 + 3] - '0');

  if ((out.error = read_headers(src, limits, out.headers)) !=
      RequestError::kNone) {
    return out;
  }
  std::size_t length = 0;
  if (find_header(out.headers, "Content-Length").has_value()) {
    if ((out.error = body_length(out.headers, limits, length)) !=
        RequestError::kNone) {
      return out;
    }
    if (length > 0) out.error = src.body(length, out.body);
    return out;
  }
  // No framing header: read to EOF, still bounded.
  for (;;) {
    const std::size_t take =
        std::min(limits.max_body_bytes - out.body.size(),
                 src.buf.size() - src.pos);
    out.body.append(src.buf, src.pos, take);
    src.pos += take;
    if (out.body.size() >= limits.max_body_bytes) {
      if (src.pending() || src.fill() != RequestError::kClosed) {
        out.error = RequestError::kBodyTooLarge;
      }
      return out;
    }
    err = src.fill();
    if (err == RequestError::kClosed) return out;
    if (err != RequestError::kNone) {
      out.error = err;
      return out;
    }
  }
}

}  // namespace rainshine::net
