#include "rainshine/net/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "rainshine/net/socket.hpp"
#include "rainshine/util/check.hpp"
#include "rainshine/util/rng.hpp"

namespace rainshine::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Nearest-rank percentile over a SORTED sample; 0 for an empty one.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

std::string json_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Per-thread tallies, merged once at the end (no shared mutable state on
/// the hot path).
struct ThreadTally {
  std::uint64_t attempts = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_hits = 0;
  std::uint64_t failed = 0;
  std::uint64_t transport_errors = 0;
  std::vector<double> latencies_us;
};

}  // namespace

ResponseOutcome request_once(const std::string& host, std::uint16_t port,
                             const std::string& method,
                             const std::string& target, std::string_view body,
                             std::span<const HttpHeader> extra_headers,
                             std::chrono::milliseconds timeout) {
  TcpSocket sock = TcpSocket::connect(host, port, timeout);
  sock.set_read_timeout(timeout);
  sock.set_write_timeout(timeout);

  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "Host: " + host + "\r\n";
  for (const auto& h : extra_headers) {
    wire += h.name + ": " + h.value + "\r\n";
  }
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  wire += body;
  sock.write_all(wire);
  return read_response(sock);
}

std::string LoadGenReport::to_json() const {
  std::string json = "{";
  json += "\"scheduled\":" + std::to_string(scheduled);
  json += ",\"attempts\":" + std::to_string(attempts);
  json += ",\"ok\":" + std::to_string(ok);
  json += ",\"shed\":" + std::to_string(shed);
  json += ",\"deadline_hits\":" + std::to_string(deadline_hits);
  json += ",\"failed\":" + std::to_string(failed);
  json += ",\"transport_errors\":" + std::to_string(transport_errors);
  json += ",\"p50_us\":" + json_number(p50_us);
  json += ",\"p99_us\":" + json_number(p99_us);
  json += ",\"p999_us\":" + json_number(p999_us);
  json += ",\"max_us\":" + json_number(max_us);
  json += ",\"shed_rate\":" + json_number(shed_rate);
  json += ",\"achieved_rps\":" + json_number(achieved_rps);
  json += "}";
  return json;
}

LoadGenReport run_load(const LoadGenConfig& config) {
  util::require(config.rps > 0.0, "run_load: rps must be positive");
  util::require(config.num_threads > 0, "run_load: need at least one thread");
  util::require(config.duration.count() > 0,
                "run_load: duration must be positive");

  const double duration_s =
      std::chrono::duration<double>(config.duration).count();
  const auto total_ticks = static_cast<std::uint64_t>(
      std::max(1.0, std::floor(config.rps * duration_s)));
  const auto tick_interval = std::chrono::duration<double>(1.0 / config.rps);

  std::vector<HttpHeader> headers;
  if (config.deadline_ms.has_value()) {
    headers.push_back({"X-Deadline-Ms", std::to_string(*config.deadline_ms)});
  }

  const auto start = Clock::now();
  std::vector<ThreadTally> tallies(config.num_threads);
  std::vector<std::thread> threads;
  threads.reserve(config.num_threads);

  for (std::size_t t = 0; t < config.num_threads; ++t) {
    threads.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      util::Rng rng = util::Rng(config.seed).split(t);
      // Stripe: thread t owns ticks t, t+T, t+2T, ... — due times are fixed
      // up front (open loop), independent of how fast responses come back.
      for (std::uint64_t tick = t; tick < total_ticks;
           tick += config.num_threads) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        tick_interval * static_cast<double>(tick));
        std::this_thread::sleep_until(due);

        bool done = false;
        auto backoff = config.base_backoff;
        for (int attempt = 0; attempt <= config.max_retries && !done;
             ++attempt) {
          if (attempt > 0) {
            // Capped exponential backoff with full jitter: sleep a uniform
            // slice of the current cap so synchronized retries de-correlate.
            const auto jitter_ms = rng.below(
                static_cast<std::uint64_t>(backoff.count()) + 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(jitter_ms));
            backoff = std::min(backoff * 2, config.max_backoff);
          }
          ++tally.attempts;
          ResponseOutcome resp;
          try {
            resp = request_once(config.host, config.port, "POST", "/score",
                                config.body, headers, config.io_timeout);
          } catch (const io_error&) {
            ++tally.transport_errors;
            continue;  // retryable
          }
          if (!resp.ok()) {
            ++tally.transport_errors;
            continue;  // truncated/garbled response: retryable
          }
          if (resp.status == 503) {
            ++tally.shed;
            continue;  // the retry-after case this generator exists to probe
          }
          done = true;
          if (resp.status == 504) {
            ++tally.deadline_hits;
            ++tally.failed;
          } else if (resp.status >= 200 && resp.status < 300) {
            ++tally.ok;
            const auto latency =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - due);
            tally.latencies_us.push_back(
                static_cast<double>(latency.count()));
          } else {
            ++tally.failed;  // terminal 4xx/5xx: retrying will not help
          }
        }
        if (!done) ++tally.failed;  // retries exhausted
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto wall = std::chrono::duration<double>(Clock::now() - start);

  LoadGenReport report;
  report.scheduled = total_ticks;
  std::vector<double> latencies;
  for (const auto& tally : tallies) {
    report.attempts += tally.attempts;
    report.ok += tally.ok;
    report.shed += tally.shed;
    report.deadline_hits += tally.deadline_hits;
    report.failed += tally.failed;
    report.transport_errors += tally.transport_errors;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p99_us = percentile(latencies, 0.99);
  report.p999_us = percentile(latencies, 0.999);
  report.max_us = latencies.empty() ? 0.0 : latencies.back();
  report.shed_rate =
      report.attempts == 0
          ? 0.0
          : static_cast<double>(report.shed) / static_cast<double>(report.attempts);
  report.achieved_rps = wall.count() <= 0.0
                            ? 0.0
                            : static_cast<double>(report.ok) / wall.count();
  return report;
}

}  // namespace rainshine::net
