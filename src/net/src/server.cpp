#include "rainshine/net/server.hpp"

#include <cinttypes>
#include <cstdio>
#include <exception>
#include <limits>
#include <sstream>
#include <utility>

#include "rainshine/obs/export.hpp"
#include "rainshine/serve/service.hpp"
#include "rainshine/table/csv.hpp"
#include "rainshine/util/check.hpp"
#include "rainshine/util/strings.hpp"

namespace rainshine::net {
namespace {

/// Shortest round-trippable rendering of a prediction (matches the CSV
/// writer's stance: %.17g always round-trips an IEEE double).
std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Minimal JSON string escaping for model names and error messages.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

HttpResponse text_response(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = std::move(body);
  if (!resp.body.empty() && resp.body.back() != '\n') resp.body += '\n';
  return resp;
}

HttpResponse method_not_allowed(const char* allow) {
  HttpResponse resp = text_response(405, "method not allowed");
  resp.headers.push_back({"Allow", allow});
  return resp;
}

}  // namespace

HttpServer::HttpServer(std::shared_ptr<serve::PredictionService> service,
                       serve::ModelRegistry* registry, ServerConfig config,
                       const stream::SeriesStore* series)
    : service_(std::move(service)),
      registry_(registry),
      series_(series),
      config_(std::move(config)),
      listener_(config_.host, config_.port,
                static_cast<int>(config_.max_pending_connections)) {
  util::require(service_ != nullptr, "HttpServer: service must not be null");
  util::require(config_.num_workers > 0, "HttpServer: need at least one worker");
  util::require(config_.max_pending_connections > 0,
                "HttpServer: need a nonzero connection queue");

  auto& reg = obs::registry();
  obs_.accepted = &reg.counter("net.connections_accepted");
  obs_.shed = &reg.counter("net.connections_shed");
  obs_.requests = &reg.counter("net.requests_total");
  obs_.responses_2xx = &reg.counter("net.responses_2xx");
  obs_.responses_4xx = &reg.counter("net.responses_4xx");
  obs_.responses_5xx = &reg.counter("net.responses_5xx");
  obs_.parse_errors = &reg.counter("net.parse_errors");
  obs_.score_shed = &reg.counter("net.score_shed");
  obs_.deadline_exceeded = &reg.counter("net.deadline_exceeded");
  obs_.io_errors = &reg.counter("net.io_errors");
  obs_.queue_depth = &reg.gauge("net.queue_depth");
  obs_.draining = &reg.gauge("net.draining");
  obs_.request_us = &reg.histogram("net.request_us");
  obs_.draining->set(0.0);

  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() {
  request_drain();
  wait();
}

void HttpServer::swap_service(std::shared_ptr<serve::PredictionService> next) {
  util::require(next != nullptr, "swap_service: service must not be null");
  std::shared_ptr<serve::PredictionService> old;
  {
    const std::lock_guard<std::mutex> lock(service_mutex_);
    old = std::exchange(service_, std::move(next));
  }
  // `old` dies here unless in-flight requests still hold it; its destructor
  // drains admitted work, so nothing accepted before the swap is dropped.
}

std::shared_ptr<serve::PredictionService> HttpServer::service() const {
  const std::lock_guard<std::mutex> lock(service_mutex_);
  return service_;
}

void HttpServer::request_drain() noexcept {
  // Async-signal-safe: one lock-free atomic store, one relaxed store into the
  // gauge, one write(2) on the self-pipe. No locks, no allocation.
  draining_.store(true, std::memory_order_release);
  obs_.draining->set(1.0);
  listener_.interrupt();
}

void HttpServer::wait() {
  const std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_) return;
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  joined_ = true;
}

void HttpServer::accept_loop() {
  while (auto sock = listener_.accept()) {
    obs_.accepted->add();
    bool shed = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.size() >= config_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(std::move(*sock));
        obs_.queue_depth->set(static_cast<double>(pending_.size()));
      }
    }
    if (shed) {
      // Load shedding: tell the client to back off, bounded by a short write
      // timeout so a stalled peer cannot stall the acceptor. Orderly close
      // (FIN), not abort (RST) — an RST can flush the peer's receive queue
      // before it reads the 503, and a shed client that never sees
      // Retry-After retries immediately, which is the opposite of shedding.
      obs_.shed->add();
      try {
        sock->set_write_timeout(std::chrono::milliseconds(100));
        sock->write_all(shed_response().serialize(false));
      } catch (const io_error&) {
        // Best effort only; the close below still frees the acceptor.
      }
      sock->close();
    } else {
      work_ready_.notify_one();
    }
  }
  // accept() returned nullopt: drain was requested. Close the listener —
  // interrupt() only woke us; while the fd stays open the kernel keeps
  // completing handshakes into the backlog, and those peers would hang.
  // Then tell the workers the queue will never grow again so they can exit
  // once it empties.
  listener_.close();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accept_done_ = true;
  }
  work_ready_.notify_all();
}

void HttpServer::worker_loop() {
  for (;;) {
    TcpSocket sock;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return accept_done_ || !pending_.empty(); });
      if (pending_.empty()) return;  // accept_done_ && nothing left: drained
      sock = std::move(pending_.front());
      pending_.pop_front();
      obs_.queue_depth->set(static_cast<double>(pending_.size()));
    }
    serve_connection(std::move(sock));
  }
}

void HttpServer::serve_connection(TcpSocket sock) {
  try {
    sock.set_read_timeout(config_.read_timeout);
    sock.set_write_timeout(config_.write_timeout);
  } catch (const io_error&) {
    obs_.io_errors->add();
    return;
  }
  RequestReader reader(sock, config_.limits);
  for (;;) {
    const RequestOutcome outcome = reader.next();
    if (!outcome.ok()) {
      if (outcome.error == RequestError::kClosed) return;  // clean keep-alive end
      obs_.parse_errors->add();
      const int status = status_for(outcome.error);
      if (status == 0) {
        // Transport already broke (reset / hard I/O error): nothing to say.
        obs_.io_errors->add();
        return;
      }
      HttpResponse resp =
          text_response(status, std::string(to_string(outcome.error)));
      if (status == 503) resp.headers.push_back(
          {"Retry-After", std::to_string(config_.retry_after_seconds)});
      try {
        sock.write_all(resp.serialize(false));
      } catch (const io_error&) {
        obs_.io_errors->add();
      }
      return;  // parse errors always close: the stream may be desynchronized
    }

    obs_.requests->add();
    const auto start = std::chrono::steady_clock::now();
    HttpResponse resp;
    try {
      resp = route(outcome.request);
    } catch (const std::exception& e) {
      resp = text_response(500, std::string("internal error: ") + e.what());
    }
    if (resp.status >= 500) {
      obs_.responses_5xx->add();
    } else if (resp.status >= 400) {
      obs_.responses_4xx->add();
    } else {
      obs_.responses_2xx->add();
    }

    // A drain that lands mid-request still answers that request — with
    // Connection: close so the client reconnects elsewhere.
    const bool keep = outcome.request.keep_alive() && !draining();
    try {
      sock.write_all(resp.serialize(keep));
    } catch (const io_error&) {
      obs_.io_errors->add();
      return;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    obs_.request_us->observe(static_cast<double>(elapsed.count()));
    if (!keep) return;
  }
}

HttpResponse HttpServer::route(const HttpRequest& req) {
  if (req.path == "/score") {
    if (req.method != "POST") return method_not_allowed("POST");
    return handle_score(req);
  }
  if (req.path == "/models") {
    if (req.method != "GET") return method_not_allowed("GET");
    return handle_models();
  }
  if (req.path == "/metrics") {
    if (req.method != "GET") return method_not_allowed("GET");
    return handle_metrics(req);
  }
  if (req.path == "/series") {
    if (req.method != "GET") return method_not_allowed("GET");
    return handle_series(req);
  }
  if (req.path == "/healthz") {
    if (req.method != "GET") return method_not_allowed("GET");
    return text_response(200, draining() ? "draining" : "ok");
  }
  return text_response(404, "not found");
}

HttpResponse HttpServer::handle_score(const HttpRequest& req) {
  // Per-request deadline: client's X-Deadline-Ms (capped at max_deadline) or
  // the configured default. 0 disables — the client accepts any wait.
  auto budget = config_.default_deadline;
  if (const auto hdr = req.header("X-Deadline-Ms")) {
    long long ms = 0;
    if (!util::parse_int(util::trim(*hdr), ms) || ms < 0) {
      return text_response(400, "bad X-Deadline-Ms: expected nonnegative integer");
    }
    budget = std::min(std::chrono::milliseconds(ms), config_.max_deadline);
  }
  serve::Deadline deadline;
  if (budget.count() > 0) {
    deadline = std::chrono::steady_clock::now() + budget;
  }

  if (req.body.empty()) return text_response(400, "empty body: expected CSV rows");

  table::Table rows;
  try {
    std::istringstream in(req.body);
    rows = table::read_csv(in);
  } catch (const std::exception& e) {
    return text_response(400, std::string("bad CSV: ") + e.what());
  }
  if (rows.num_rows() == 0) return text_response(400, "no data rows in body");

  // One snapshot for the whole request: scoring, schema and labels all come
  // from the same service even if swap_service() lands mid-flight.
  const std::shared_ptr<serve::PredictionService> service = this->service();
  const auto& meta = service->model();
  const auto issues = serve::schema_issues(rows, meta.schema);
  if (!issues.empty()) {
    std::string body = "schema mismatch:";
    for (const auto& issue : issues) body += "\n  " + issue;
    return text_response(422, std::move(body));
  }

  std::optional<std::future<std::vector<double>>> fut;
  try {
    fut = service->try_submit(rows, deadline);
  } catch (const util::precondition_error& e) {
    return text_response(422, std::string("schema mismatch: ") + e.what());
  }
  if (!fut) {
    // Scoring-queue backpressure: same shedding contract as the connection
    // queue — an honest 503 now beats an unbounded wait.
    obs_.score_shed->add();
    HttpResponse resp = text_response(503, "scoring queue full, retry later");
    resp.headers.push_back(
        {"Retry-After", std::to_string(config_.retry_after_seconds)});
    return resp;
  }

  std::vector<double> predictions;
  try {
    predictions = fut->get();
  } catch (const serve::deadline_exceeded_error&) {
    obs_.deadline_exceeded->add();
    return text_response(504, "deadline exceeded before scoring completed");
  } catch (const serve::service_stopped_error&) {
    HttpResponse resp = text_response(503, "service stopping");
    resp.headers.push_back(
        {"Retry-After", std::to_string(config_.retry_after_seconds)});
    return resp;
  } catch (const std::exception& e) {
    return text_response(500, std::string("scoring failed: ") + e.what());
  }

  std::string body = "prediction\n";
  const bool classify = meta.task == cart::Task::kClassification &&
                        !meta.class_labels.empty();
  for (const double p : predictions) {
    if (classify) {
      const auto code = static_cast<std::size_t>(p);
      body += code < meta.class_labels.size() ? meta.class_labels[code]
                                              : format_double(p);
    } else {
      body += format_double(p);
    }
    body += '\n';
  }
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "text/csv; charset=utf-8";
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpServer::handle_models() const {
  const std::shared_ptr<serve::PredictionService> service = this->service();
  const auto& meta = service->model();
  std::string json = "{\"schema\":\"rainshine.models.v1\",";
  json += "\"draining\":";
  json += draining() ? "true" : "false";
  json += ',';
  if (registry_ != nullptr) {
    // Swap observability: the registry-wide put counter and the wall-clock
    // time of the most recent put, so an external watcher can tell "same
    // version string" apart from "same bits I saw last scrape".
    json += "\"swap_generation\":" + std::to_string(registry_->swap_generation());
    json += ",\"last_swap_unix_ms\":" + std::to_string(registry_->last_swap_unix_ms());
    json += ',';
  }
  json += "\"serving\":{\"name\":\"" + json_escape(meta.name) + "\"";
  json += ",\"version\":" + std::to_string(meta.version);
  json += ",\"task\":\"";
  json += meta.task == cart::Task::kClassification ? "classification"
                                                   : "regression";
  json += "\",\"oob_error\":" + format_double(meta.oob_error);
  json += ",\"scorer\":\"";
  json += cart::to_string(service->scorer());
  json += "\"}";
  json += ",\"registered\":[";
  if (registry_ != nullptr) {
    bool first = true;
    for (const auto& entry : registry_->describe()) {
      const auto& key = entry.key;
      if (!first) json += ',';
      first = false;
      json += "{\"name\":\"" + json_escape(key.name) + "\"";
      json += ",\"version\":" + std::to_string(key.version);
      json += ",\"generation\":" + std::to_string(entry.generation);
      json += ",\"registered_unix_ms\":" + std::to_string(entry.registered_unix_ms);
      json += ",\"serving\":";
      json += (key.name == meta.name && key.version == meta.version) ? "true"
                                                                     : "false";
      json += '}';
    }
  }
  json += "]}";
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(json);
  return resp;
}

HttpResponse HttpServer::handle_metrics(const HttpRequest& req) const {
  const auto snap = obs::registry().snapshot();
  HttpResponse resp;
  const auto format = req.query_param("format").value_or("text");
  if (format == "json") {
    resp.content_type = "application/json";
    resp.body = obs::to_json(snap);
  } else if (format == "csv") {
    resp.content_type = "text/csv; charset=utf-8";
    resp.body = obs::to_csv(snap);
  } else if (format == "text") {
    resp.body = obs::to_text(snap);
  } else {
    return text_response(400, "unknown format: expected text, json, or csv");
  }
  return resp;
}

HttpResponse HttpServer::handle_series(const HttpRequest& req) const {
  if (series_ == nullptr) {
    return text_response(404, "no series store attached to this server");
  }

  // Bounded typed query parsing, same stance as the HttpLimits layer: every
  // parameter has an explicit type, range and cap, and a bad value is a 400
  // naming the parameter — never a fallback to something surprising.
  const auto name = req.query_param("series");
  if (!name) {
    // Catalogue: every series with its tier geometry.
    std::string json = "{\"schema\":\"rainshine.series.v1\",\"series\":[";
    bool first = true;
    for (const auto& spec : series_->describe()) {
      if (!first) json += ',';
      first = false;
      json += "{\"name\":\"" + json_escape(spec.name) + "\",\"tiers\":[";
      bool first_tier = true;
      for (const auto& tier : spec.tiers) {
        if (!first_tier) json += ',';
        first_tier = false;
        json += "{\"step_hours\":" + std::to_string(tier.step_hours);
        json += ",\"slots\":" + std::to_string(tier.slots) + '}';
      }
      json += "]}";
    }
    json += "]}";
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = std::move(json);
    return resp;
  }

  if (!series_->contains(*name)) {
    return text_response(404, "unknown series: " + std::string(*name));
  }
  const stream::SeriesId id = series_->id_of(*name);
  const std::vector<stream::SeriesSpec> catalogue = series_->describe();

  long long tier = 0;
  if (const auto v = req.query_param("tier")) {
    if (!util::parse_int(util::trim(*v), tier) || tier < 0) {
      return text_response(400, "bad tier: expected nonnegative integer");
    }
  }
  if (static_cast<std::size_t>(tier) >= catalogue[id].tiers.size()) {
    return text_response(400, "bad tier: series has " +
                                  std::to_string(catalogue[id].tiers.size()) +
                                  " tier(s)");
  }
  long long from_hour = 0;
  bool have_from = false;
  if (const auto v = req.query_param("from_hour")) {
    if (!util::parse_int(util::trim(*v), from_hour) || from_hour < 0) {
      return text_response(400, "bad from_hour: expected nonnegative integer");
    }
    have_from = true;
  }
  long long to_hour = 0;
  bool have_to = false;
  if (const auto v = req.query_param("to_hour")) {
    if (!util::parse_int(util::trim(*v), to_hour) || to_hour < 0) {
      return text_response(400, "bad to_hour: expected nonnegative integer");
    }
    have_to = true;
  }
  if (have_from && have_to && to_hour <= from_hour) {
    return text_response(400, "bad range: to_hour must exceed from_hour");
  }
  constexpr long long kMaxPointsCap = 4096;
  long long max_points = 512;
  if (const auto v = req.query_param("max_points")) {
    if (!util::parse_int(util::trim(*v), max_points) || max_points < 1 ||
        max_points > kMaxPointsCap) {
      return text_response(400, "bad max_points: expected 1.." +
                                    std::to_string(kMaxPointsCap));
    }
  }

  std::vector<stream::AggregateSample> samples = series_->read(
      id, static_cast<std::size_t>(tier),
      have_from ? from_hour : std::numeric_limits<std::int64_t>::min(),
      have_to ? to_hour : std::numeric_limits<std::int64_t>::max());
  // Truncate to the NEWEST max_points — the recent edge is what a live
  // scrape wants — and say so, rather than silently decimating.
  const bool truncated = samples.size() > static_cast<std::size_t>(max_points);
  if (truncated) {
    samples.erase(samples.begin(),
                  samples.end() - static_cast<std::ptrdiff_t>(max_points));
  }

  std::string json = "{\"schema\":\"rainshine.series.v1\"";
  json += ",\"name\":\"" + json_escape(*name) + "\"";
  json += ",\"tier\":{\"step_hours\":" +
          std::to_string(catalogue[id].tiers[static_cast<std::size_t>(tier)].step_hours);
  json += ",\"slots\":" +
          std::to_string(catalogue[id].tiers[static_cast<std::size_t>(tier)].slots) + '}';
  json += ",\"last_hour\":" + std::to_string(series_->last_hour(id));
  json += ",\"truncated\":";
  json += truncated ? "true" : "false";
  json += ",\"samples\":[";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) json += ',';
    first = false;
    json += "{\"hour\":" + std::to_string(s.bucket_start_hour);
    json += ",\"count\":" + std::to_string(s.count);
    if (s.count == 0) {
      // A gap: no samples landed while the bucket was in the window.
      json += ",\"mean\":null,\"min\":null,\"max\":null}";
    } else {
      json += ",\"mean\":" + format_double(s.mean());
      json += ",\"min\":" + format_double(s.min);
      json += ",\"max\":" + format_double(s.max) + '}';
    }
  }
  json += "]}";
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(json);
  return resp;
}

HttpResponse HttpServer::shed_response() const {
  HttpResponse resp = text_response(503, "server overloaded, retry later");
  resp.headers.push_back(
      {"Retry-After", std::to_string(config_.retry_after_seconds)});
  return resp;
}

}  // namespace rainshine::net
