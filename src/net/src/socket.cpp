#include "rainshine/net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "rainshine/util/check.hpp"

namespace rainshine::net {

namespace {

[[noreturn]] void throw_errno(IoStatus status, const std::string& what) {
  throw io_error(status, what + ": " + std::strerror(errno));
}

/// Maps an I/O errno to the typed status the caller should see.
IoStatus classify(int err) noexcept {
  switch (err) {
    case ECONNRESET:
    case EPIPE:
      return IoStatus::kReset;
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ETIMEDOUT:
      return IoStatus::kTimeout;
    default:
      return IoStatus::kError;
  }
}

void set_timeout_option(int fd, int option, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv) != 0) {
    throw_errno(IoStatus::kError, "setsockopt(timeout)");
  }
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  util::require(::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) == 1,
                "not an IPv4 address: " + host);
  return addr;
}

}  // namespace

TcpSocket& TcpSocket::operator=(TcpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpSocket TcpSocket::connect(const std::string& host, std::uint16_t port,
                             std::chrono::milliseconds timeout) {
  const sockaddr_in addr = make_address(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(IoStatus::kError, "socket");
  TcpSocket sock(fd);  // owns the fd from here on; error paths auto-close

  // Non-blocking connect + poll: SO_SNDTIMEO does not bound connect(2)
  // portably, and an unbounded connect would hand a hostile network a whole
  // client thread.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno(IoStatus::kError, "fcntl(O_NONBLOCK)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) throw_errno(classify(errno), "connect");
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready == 0) throw io_error(IoStatus::kTimeout, "connect timed out");
    if (ready < 0) throw_errno(IoStatus::kError, "poll(connect)");
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      throw_errno(IoStatus::kError, "getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      throw_errno(classify(err), "connect");
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    throw_errno(IoStatus::kError, "fcntl(restore flags)");
  }
  return sock;
}

void TcpSocket::set_read_timeout(std::chrono::milliseconds timeout) {
  util::require(valid(), "set_read_timeout on an invalid socket");
  set_timeout_option(fd_, SO_RCVTIMEO, timeout);
}

void TcpSocket::set_write_timeout(std::chrono::milliseconds timeout) {
  util::require(valid(), "set_write_timeout on an invalid socket");
  set_timeout_option(fd_, SO_SNDTIMEO, timeout);
}

std::size_t TcpSocket::read_some(std::span<char> buf) {
  if (!valid()) throw io_error(IoStatus::kClosed, "read on a closed socket");
  for (;;) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return 0;  // orderly EOF
    if (errno == EINTR) continue;
    throw_errno(classify(errno), "recv");
  }
}

std::size_t TcpSocket::write_some(std::span<const char> buf) {
  if (!valid()) throw io_error(IoStatus::kClosed, "write on a closed socket");
  for (;;) {
    // MSG_NOSIGNAL: a peer that already closed must be a typed error in this
    // thread, not a SIGPIPE for the whole process.
    const ssize_t n = ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno(classify(errno), "send");
  }
}

void TcpSocket::abort() noexcept {
  if (!valid()) return;
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;  // close() now sends RST instead of FIN
  (void)::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  close();
}

void TcpSocket::close() noexcept {
  if (!valid()) return;
  (void)::close(fd_);
  fd_ = -1;
}

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         int backlog) {
  sockaddr_in addr = make_address(host, port);
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno(IoStatus::kError, "socket(listener)");
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    (void)::close(fd_);
    errno = err;
    throw_errno(IoStatus::kError, "bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, backlog) != 0) {
    const int err = errno;
    (void)::close(fd_);
    errno = err;
    throw_errno(IoStatus::kError, "listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    (void)::close(fd_);
    errno = err;
    throw_errno(IoStatus::kError, "getsockname");
  }
  port_ = ntohs(bound.sin_port);

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    const int err = errno;
    (void)::close(fd_);
    errno = err;
    throw_errno(IoStatus::kError, "pipe(self-wake)");
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) (void)::close(fd_);
  if (wake_rd_ >= 0) (void)::close(wake_rd_);
  if (wake_wr_ >= 0) (void)::close(wake_wr_);
}

std::optional<TcpSocket> TcpListener::accept() {
  for (;;) {
    pollfd pfds[2] = {{fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno(IoStatus::kError, "poll(accept)");
    }
    // Drain wakeups AFTER checking for a pending connection would race a
    // shed decision; drain takes priority — once interrupted, no further
    // connection is ever handed out (the listener is closing).
    if ((pfds[1].revents & POLLIN) != 0) return std::nullopt;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return TcpSocket(fd);
    // The peer can vanish between SYN and accept (ECONNABORTED); transient
    // resource pressure (EMFILE etc.) also must not kill the acceptor.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EMFILE || errno == ENFILE) {
      continue;
    }
    throw_errno(IoStatus::kError, "accept");
  }
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

void TcpListener::interrupt() noexcept {
  // Async-signal-safe: write(2) only. The byte is never drained; the
  // poll in accept() sees POLLIN forever, which is exactly the semantics
  // "interrupted once, interrupted for good" that drain wants.
  const char byte = 1;
  (void)!::write(wake_wr_, &byte, 1);
}

}  // namespace rainshine::net
