// Bounded blocking channel: the serve admission-queue idiom (mutex, two
// condition variables, explicit capacity) extracted into a reusable
// primitive for producer/consumer pipelines.
//
// Semantics:
//   - push() blocks while the channel is full; returns false (dropping the
//     item) once the channel is closed.
//   - pop() blocks while the channel is empty; after close() it keeps
//     draining whatever was queued, then returns nullopt.
//   - close() is idempotent and wakes every blocked producer and consumer.
//
// Multiple producers and consumers are safe; the stream sources use it
// single-producer/single-consumer (one simulation thread feeding one
// pipeline loop), which also gives FIFO per producer — the property the
// deterministic day-ordering of chunks rests on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "rainshine/util/check.hpp"

namespace rainshine::stream {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    util::require(capacity > 0, "Channel capacity must be positive");
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks until there is room (backpressure), then enqueues. Returns false
  /// — and discards `item` — if the channel is (or becomes) closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue: false when full or closed.
  bool try_push(T item) {
    {
      std::unique_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the channel is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the channel: producers fail fast, consumers drain then stop.
  void close() {
    {
      std::unique_lock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::unique_lock lock(mutex_);
    return closed_;
  }

  /// Queued (not yet popped) items — a point-in-time depth gauge.
  [[nodiscard]] std::size_t size() const {
    std::unique_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace rainshine::stream
