// SeriesStore: an rrd-style fixed-window, constant-memory time-series store.
//
// Each named series owns one or more TIERS. A tier is a ring of `slots`
// aggregate buckets, each covering `step_hours` of simulated time: pushing a
// sample at hour h folds it into bucket h / step_hours of EVERY tier
// (count/sum/min/max — mean is sum/count at read time, so downsampling
// semantics are explicit, not an implicit decimation). The ring retains the
// trailing `slots * step_hours` hours; advancing past the newest bucket
// zeroes any skipped slots, which is how missed ticks surface as count-0
// GAPS rather than stale values. Samples older than the retained window are
// dropped and counted (`stream.store_late_drops`).
//
// Memory is bounded at construction time: after the last add_series() call,
// `memory_bytes()` never changes — no push pattern can grow it (the soak
// test pins this). All operations are thread-safe behind a shared_mutex
// (single writer, concurrent readers — the /series scrape path).
//
// Snapshot format ("RSS1", little-endian, CRC32-guarded like the .rsf
// artifact header) lays every tier out as a contiguous array of 32-byte
// fixed-width slot records, 8-byte aligned at a recorded offset — designed
// so a future reader can mmap the file and point straight at the rings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rainshine::stream {

/// A snapshot file that cannot be adopted (bad magic/version/CRC/shape).
class snapshot_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One resolution tier of a series.
struct TierSpec {
  std::int64_t step_hours = 1;  ///< bucket width in simulated hours
  std::size_t slots = 0;        ///< ring length; retains slots * step_hours
};

struct SeriesSpec {
  std::string name;
  std::vector<TierSpec> tiers;
};

/// One aggregate bucket, as stored and as read back. count == 0 marks a gap
/// (no samples landed in the bucket while it was in the window).
struct AggregateSample {
  std::int64_t bucket_start_hour = 0;
  std::uint32_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

using SeriesId = std::size_t;

class SeriesStore {
 public:
  SeriesStore() = default;
  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  /// Registers a series; returns its id. Names must be unique; every tier
  /// needs step_hours >= 1 and slots >= 1. This is the ONLY call that
  /// allocates — memory_bytes() is constant afterwards.
  SeriesId add_series(SeriesSpec spec);

  /// Folds `value` at simulated `hour` into every tier of `id`. Returns
  /// false (and counts a late drop) when `hour` has already rotated out of
  /// the tier's window; a sample late for one tier still lands in coarser
  /// tiers that retain it.
  bool push(SeriesId id, std::int64_t hour, double value);

  /// Chronological read of tier `tier` over bucket-start hours
  /// [from_hour, to_hour); gaps come back with count == 0. Hours outside the
  /// retained window are simply absent from the result.
  [[nodiscard]] std::vector<AggregateSample> read(
      SeriesId id, std::size_t tier,
      std::int64_t from_hour = std::numeric_limits<std::int64_t>::min(),
      std::int64_t to_hour = std::numeric_limits<std::int64_t>::max()) const;

  /// Series id by name; throws std::out_of_range when unknown.
  [[nodiscard]] SeriesId id_of(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::vector<SeriesSpec> describe() const;
  [[nodiscard]] std::size_t num_series() const;

  /// Newest hour ever pushed to `id` (-1 before the first push).
  [[nodiscard]] std::int64_t last_hour(SeriesId id) const;

  /// Total heap footprint of every ring + bookkeeping, in bytes. Constant
  /// after the last add_series() — the property the soak test asserts.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Writes / reads the binary snapshot. restore() requires an empty store
  /// and rebuilds series, tiers and ring contents exactly; a corrupt or
  /// truncated stream throws snapshot_error with the store untouched.
  void snapshot(std::ostream& out) const;
  void restore(std::istream& in);

 private:
  struct Tier {
    TierSpec spec;
    std::vector<AggregateSample> slots;  // index = bucket % spec.slots
    std::int64_t last_bucket = -1;       // newest bucket ever written; -1 = empty
  };
  struct Series {
    std::string name;
    std::vector<Tier> tiers;
    std::int64_t last_hour = -1;
  };

  void advance_to(Tier& t, std::int64_t bucket);

  mutable std::shared_mutex mutex_;
  std::vector<Series> series_;
};

}  // namespace rainshine::stream
