// Live stream sources: drive simdc incrementally, one simulated day at a
// time, instead of materializing the whole run.
//
// TicketStream is a thin adapter over simdc::simulate_streamed — the same
// day-major watermark engine the batch simulate() wraps — bridging its
// TicketSink to a bounded channel. Each chunk is one finalized day in
// batch-log order; concatenating every chunk reproduces
// simdc::simulate(...).tickets() BYTE-IDENTICALLY, burst ids included (the
// engine numbers correlated events chronologically in (day, rack,
// discovery) order). See tickets.hpp for the watermark argument.
//
// TelemetryStream samples the deterministic EnvironmentModel at a fixed
// per-day cadence — the sensor feed the ring store (store.hpp) retains.
//
// Both sources own a producer thread and a bounded Channel: a slow consumer
// back-pressures the simulation rather than buffering the fleet's history.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "rainshine/simdc/environment.hpp"
#include "rainshine/simdc/tickets.hpp"
#include "rainshine/stream/channel.hpp"

namespace rainshine::stream {

/// All tickets finalized by the end of one simulated day, in batch-log order.
struct TicketChunk {
  util::DayIndex day = 0;  ///< the day whose simulation completed
  std::vector<simdc::Ticket> tickets;
};

/// One environment sensor sample at a rack inlet.
struct TelemetryReading {
  std::int32_t rack_id = 0;
  util::HourIndex hour = 0;
  double temperature_f = 0.0;
  double relative_humidity = 0.0;
};

/// One simulated day of sensor samples, rack-major then hour-major.
struct TelemetryChunk {
  util::DayIndex day = 0;
  std::vector<TelemetryReading> readings;
};

struct SourceOptions {
  std::uint64_t seed = 1;            ///< same meaning as SimulationOptions::seed
  std::size_t channel_capacity = 4;  ///< days of backlog before backpressure
  /// Sensor samples per rack per day (must divide 24); 24 = hourly.
  int telemetry_samples_per_day = 24;
};

/// Incremental ticket source. `next()` yields per-day chunks until the
/// fleet's horizon is exhausted (then nullopt). The final day's chunk also
/// carries the overhang — tickets whose staggered onsets crossed the end of
/// the window — so the concatenation is the complete log.
class TicketStream {
 public:
  TicketStream(const simdc::Fleet& fleet, const simdc::HazardModel& hazard,
               SourceOptions options = {});
  ~TicketStream();

  TicketStream(const TicketStream&) = delete;
  TicketStream& operator=(const TicketStream&) = delete;

  /// Blocks for the next finalized day; nullopt once the stream is done
  /// (horizon reached or stop() called).
  std::optional<TicketChunk> next();

  /// Asks the producer to stop at the next day boundary and unblocks
  /// everyone. Idempotent; the destructor calls it.
  void stop();

  /// Chunks queued but not yet consumed (channel depth).
  [[nodiscard]] std::size_t queued() const { return channel_.size(); }

 private:
  void produce();

  const simdc::Fleet* fleet_;
  const simdc::HazardModel* hazard_;
  SourceOptions options_;
  Channel<TicketChunk> channel_;
  std::atomic<bool> stop_{false};
  std::thread producer_;
};

/// Incremental sensor source over the deterministic EnvironmentModel.
class TelemetryStream {
 public:
  TelemetryStream(const simdc::Fleet& fleet, const simdc::EnvironmentModel& env,
                  SourceOptions options = {});
  ~TelemetryStream();

  TelemetryStream(const TelemetryStream&) = delete;
  TelemetryStream& operator=(const TelemetryStream&) = delete;

  std::optional<TelemetryChunk> next();
  void stop();
  [[nodiscard]] std::size_t queued() const { return channel_.size(); }

 private:
  void produce();

  const simdc::Fleet* fleet_;
  const simdc::EnvironmentModel* env_;
  SourceOptions options_;
  Channel<TelemetryChunk> channel_;
  std::atomic<bool> stop_{false};
  std::thread producer_;
};

}  // namespace rainshine::stream
