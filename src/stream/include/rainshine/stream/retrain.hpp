// RetrainController: the rolling-window learning loop of the live pipeline.
//
// Feed it the finalized per-day ticket chunks the TicketStream emits. Every
// `interval_days` completed days (once `min_history_days` of history exist)
// it assembles the trailing `window_days` of tickets into a TicketLog,
// builds the rack-day λ table on the existing core::rack_day_table path
// restricted to that window, grows a fresh forest on the parallel
// cart::grow_forest path, and hot-swaps the artifact into the
// serve::ModelRegistry under `model_name` with a monotonically increasing
// version. In-flight scoring holds shared_ptrs to the old artifact, so a
// swap never tears a prediction (the registry contract; pinned by the
// swap-under-load test).
//
// Determinism: the window is a pure function of (stream contents, config) —
// tickets are pruned by open_day, the table anchors its stride at the
// window's first day, and grow_forest is bit-identical at any thread count —
// so every published version is byte-identical across reruns and
// RAINSHINE_THREADS settings.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "rainshine/cart/forest.hpp"
#include "rainshine/core/metrics.hpp"
#include "rainshine/serve/registry.hpp"
#include "rainshine/simdc/environment.hpp"
#include "rainshine/stream/source.hpp"

namespace rainshine::stream {

struct RetrainConfig {
  std::string model_name = "lambda-hw-live";
  util::DayIndex interval_days = 30;   ///< retrain cadence in simulated days
  util::DayIndex window_days = 60;     ///< trailing window the fit sees
  util::DayIndex min_history_days = 14;  ///< history needed before the first fit
  std::int32_t day_stride = 2;         ///< table subsampling, as modelc uses
  bool include_mu = false;             ///< µ columns are costly; off in the live loop
  cart::ForestConfig forest{};         ///< hyper-parameters for every refit
};

class RetrainController {
 public:
  /// The controller trains against `fleet`/`env` (borrowed; must outlive it)
  /// and publishes into `registry`.
  RetrainController(const simdc::Fleet& fleet, const simdc::EnvironmentModel& env,
                    serve::ModelRegistry& registry, RetrainConfig config = {});

  /// Consume one finalized day. Returns the key of a freshly published model
  /// when this day closed a retrain interval, nullopt otherwise.
  std::optional<serve::ModelKey> on_chunk(const TicketChunk& chunk);

  /// Force a fit over the window ending after `through_day` (used for the
  /// final partial interval); nullopt when history is still too short.
  std::optional<serve::ModelKey> retrain_now(util::DayIndex through_day);

  [[nodiscard]] std::uint32_t versions_published() const noexcept {
    return next_version_ - 1;
  }
  /// Latest published artifact (nullptr before the first fit).
  [[nodiscard]] std::shared_ptr<const serve::ModelArtifact> current() const {
    return registry_->get(config_.model_name);
  }
  [[nodiscard]] const RetrainConfig& config() const noexcept { return config_; }

 private:
  const simdc::Fleet* fleet_;
  const simdc::EnvironmentModel* env_;
  serve::ModelRegistry* registry_;
  RetrainConfig config_;
  std::deque<simdc::Ticket> window_;  ///< stream-order tickets, pruned by open_day
  util::DayIndex last_day_ = -1;
  std::uint32_t next_version_ = 1;
};

}  // namespace rainshine::stream
