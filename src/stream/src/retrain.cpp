#include "rainshine/stream/retrain.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "rainshine/cart/dataset.hpp"
#include "rainshine/core/observations.hpp"
#include "rainshine/obs/metrics.hpp"
#include "rainshine/obs/trace.hpp"
#include "rainshine/util/check.hpp"

namespace rainshine::stream {

RetrainController::RetrainController(const simdc::Fleet& fleet,
                                     const simdc::EnvironmentModel& env,
                                     serve::ModelRegistry& registry,
                                     RetrainConfig config)
    : fleet_(&fleet), env_(&env), registry_(&registry), config_(std::move(config)) {
  util::require(!config_.model_name.empty(), "retrain needs a model name");
  util::require(config_.interval_days >= 1, "interval_days must be >= 1");
  util::require(config_.window_days >= 1, "window_days must be >= 1");
  util::require(config_.min_history_days >= 1, "min_history_days must be >= 1");
  util::require(config_.day_stride >= 1, "day_stride must be >= 1");
}

std::optional<serve::ModelKey> RetrainController::on_chunk(const TicketChunk& chunk) {
  util::require(chunk.day == last_day_ + 1,
                "ticket chunks must arrive in day order with no gaps");
  last_day_ = chunk.day;
  window_.insert(window_.end(), chunk.tickets.begin(), chunk.tickets.end());

  // Prune tickets that have aged out of every window a future retrain can
  // ask for; this bounds memory to one window regardless of stream length.
  const util::DayIndex keep_from = chunk.day + 1 - config_.window_days;
  while (!window_.empty() && window_.front().open_day() < keep_from) {
    window_.pop_front();
  }

  if ((chunk.day + 1) % config_.interval_days != 0) return std::nullopt;
  return retrain_now(chunk.day);
}

std::optional<serve::ModelKey> RetrainController::retrain_now(
    util::DayIndex through_day) {
  const util::DayIndex end = through_day + 1;  // exclusive
  if (end < config_.min_history_days) return std::nullopt;
  const util::DayIndex first = std::max<util::DayIndex>(0, end - config_.window_days);

  const obs::ScopedTimer timer(obs::registry().histogram("stream.retrain_us"));

  // The window log sees exactly the tickets the stream had finalized by
  // `through_day` — late-opening spillover from earlier days included, since
  // those arrived in earlier chunks and survive in window_.
  std::vector<simdc::Ticket> tickets(window_.begin(), window_.end());
  const simdc::TicketLog log(std::move(tickets));
  const core::FailureMetrics metrics(*fleet_, log);

  core::ObservationOptions obs_opt;
  obs_opt.day_stride = config_.day_stride;
  obs_opt.include_mu = config_.include_mu;
  obs_opt.first_day = first;
  obs_opt.last_day = end;
  const table::Table tbl = core::rack_day_table(metrics, *env_, obs_opt);

  // The live model scores rack-days from static identity plus the inlet
  // conditions the telemetry stream observes.
  std::vector<std::string> features = core::static_rack_features();
  features.push_back(core::col::kTempF);
  features.push_back(core::col::kRh);
  const cart::Dataset data(tbl, core::col::kLambdaHw, std::move(features),
                           cart::Task::kRegression,
                           cart::MissingResponse::kDropRows);

  cart::Forest forest = cart::grow_forest(data, config_.forest);

  serve::ModelArtifact artifact;
  artifact.meta.name = config_.model_name;
  artifact.meta.version = next_version_++;
  artifact.meta.task = forest.task();
  artifact.meta.schema = forest.trees().front().features();
  artifact.meta.class_labels = forest.trees().front().class_labels();
  artifact.meta.config = config_.forest;
  artifact.meta.oob_error = forest.oob_error();
  artifact.forest = std::make_shared<const cart::Forest>(std::move(forest));

  const serve::ModelKey key = registry_->put(std::move(artifact));
  obs::registry().counter("stream.retrains").add(1);
  obs::registry().gauge("stream.swap_generation").set(
      static_cast<double>(registry_->swap_generation()));
  return key;
}

}  // namespace rainshine::stream
