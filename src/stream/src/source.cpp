#include "rainshine/stream/source.hpp"

#include <chrono>
#include <utility>

#include "rainshine/obs/metrics.hpp"
#include "rainshine/util/check.hpp"

namespace rainshine::stream {

namespace {

/// Bridges the engine's TicketSink to the bounded channel: copies each
/// finalized day into a chunk (the engine reuses its buffers) and applies
/// backpressure through Channel::push. Returning false — consumer stopped
/// or stream told to stop — halts the sweep at the day boundary.
class ChannelSink final : public simdc::TicketSink {
 public:
  ChannelSink(Channel<TicketChunk>& channel, const std::atomic<bool>& stop)
      : channel_(channel),
        stop_(stop),
        tickets_emitted_(obs::registry().counter("stream.tickets_emitted")),
        chunks_emitted_(obs::registry().counter("stream.ticket_chunks")),
        depth_(obs::registry().gauge("stream.ticket_channel_depth")),
        day_us_(obs::registry().histogram("stream.day_sim_us")),
        last_(std::chrono::steady_clock::now()) {}

  bool on_day(util::DayIndex day, std::span<const simdc::Ticket> tickets) override {
    // One call per simulated day: the gap since the previous call is that
    // day's generation + merge time.
    const auto now = std::chrono::steady_clock::now();
    day_us_.observe(
        std::chrono::duration<double, std::micro>(now - last_).count());
    last_ = now;

    if (stop_.load(std::memory_order_relaxed)) return false;
    TicketChunk chunk;
    chunk.day = day;
    chunk.tickets.assign(tickets.begin(), tickets.end());
    tickets_emitted_.add(chunk.tickets.size());
    if (!channel_.push(std::move(chunk))) return false;  // consumer stopped us
    chunks_emitted_.add(1);
    depth_.set(static_cast<double>(channel_.size()));
    return true;
  }

 private:
  Channel<TicketChunk>& channel_;
  const std::atomic<bool>& stop_;
  obs::Counter& tickets_emitted_;
  obs::Counter& chunks_emitted_;
  obs::Gauge& depth_;
  obs::Histogram& day_us_;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace

TicketStream::TicketStream(const simdc::Fleet& fleet,
                           const simdc::HazardModel& hazard, SourceOptions options)
    : fleet_(&fleet),
      hazard_(&hazard),
      options_(options),
      channel_(options.channel_capacity) {
  producer_ = std::thread([this] { produce(); });
}

TicketStream::~TicketStream() {
  stop();
  if (producer_.joinable()) producer_.join();
}

std::optional<TicketChunk> TicketStream::next() {
  auto chunk = channel_.pop();
  obs::registry().gauge("stream.ticket_channel_depth").set(
      static_cast<double>(channel_.size()));
  return chunk;
}

void TicketStream::stop() {
  stop_.store(true, std::memory_order_relaxed);
  channel_.close();
}

void TicketStream::produce() {
  // The engine owns the day-major watermark logic; this producer is just a
  // sink adapter plus channel lifecycle.
  simdc::SimulationOptions opts;
  opts.seed = options_.seed;
  ChannelSink sink(channel_, stop_);
  simdc::simulate_streamed(*fleet_, *hazard_, sink, std::move(opts));
  channel_.close();
}

TelemetryStream::TelemetryStream(const simdc::Fleet& fleet,
                                 const simdc::EnvironmentModel& env,
                                 SourceOptions options)
    : fleet_(&fleet),
      env_(&env),
      options_(options),
      channel_(options.channel_capacity) {
  util::require(options_.telemetry_samples_per_day > 0 &&
                    util::kHoursPerDay % options_.telemetry_samples_per_day == 0,
                "telemetry_samples_per_day must divide 24");
  producer_ = std::thread([this] { produce(); });
}

TelemetryStream::~TelemetryStream() {
  stop();
  if (producer_.joinable()) producer_.join();
}

std::optional<TelemetryChunk> TelemetryStream::next() {
  auto chunk = channel_.pop();
  obs::registry().gauge("stream.telemetry_channel_depth").set(
      static_cast<double>(channel_.size()));
  return chunk;
}

void TelemetryStream::stop() {
  stop_.store(true, std::memory_order_relaxed);
  channel_.close();
}

void TelemetryStream::produce() {
  obs::Counter& samples = obs::registry().counter("stream.telemetry_samples");
  obs::Gauge& depth = obs::registry().gauge("stream.telemetry_channel_depth");

  const auto& racks = fleet_->racks();
  const int stride = util::kHoursPerDay / options_.telemetry_samples_per_day;

  for (util::DayIndex day = 0; day < fleet_->spec().num_days; ++day) {
    if (stop_.load(std::memory_order_relaxed)) return;
    TelemetryChunk chunk;
    chunk.day = day;
    chunk.readings.reserve(racks.size() *
                           static_cast<std::size_t>(options_.telemetry_samples_per_day));
    for (const simdc::Rack& rack : racks) {
      for (int k = 0; k < options_.telemetry_samples_per_day; ++k) {
        const util::HourIndex hour =
            util::Calendar::first_hour(day) + k * stride;
        const simdc::Conditions c = env_->at(rack, hour);
        chunk.readings.push_back(
            {rack.id, hour, c.temperature_f, c.relative_humidity});
      }
    }
    samples.add(chunk.readings.size());
    if (!channel_.push(std::move(chunk))) return;
    depth.set(static_cast<double>(channel_.size()));
  }
  channel_.close();
}

}  // namespace rainshine::stream
