#include "rainshine/stream/source.hpp"

#include <limits>
#include <queue>
#include <utility>

#include "rainshine/obs/metrics.hpp"
#include "rainshine/obs/trace.hpp"
#include "rainshine/util/check.hpp"
#include "rainshine/util/parallel.hpp"

namespace rainshine::stream {

namespace {

/// A generated-but-not-yet-final ticket plus the coordinates that order it.
/// The batch TicketLog is a stable sort by open_hour over rack-major
/// generation order, so the full sort key is (open_hour, rack_idx, day, seq):
/// equal open_hours keep generation order, which is rack first, then day,
/// then within-day sequence.
struct Pending {
  simdc::Ticket ticket;
  std::size_t rack_idx = 0;
  util::DayIndex day = 0;
  std::uint32_t seq = 0;
};

struct PendingAfter {
  bool operator()(const Pending& a, const Pending& b) const noexcept {
    if (a.ticket.open_hour != b.ticket.open_hour)
      return a.ticket.open_hour > b.ticket.open_hour;
    if (a.rack_idx != b.rack_idx) return a.rack_idx > b.rack_idx;
    if (a.day != b.day) return a.day > b.day;
    return a.seq > b.seq;
  }
};

}  // namespace

TicketStream::TicketStream(const simdc::Fleet& fleet,
                           const simdc::HazardModel& hazard, SourceOptions options)
    : fleet_(&fleet),
      hazard_(&hazard),
      options_(options),
      channel_(options.channel_capacity) {
  producer_ = std::thread([this] { produce(); });
}

TicketStream::~TicketStream() {
  stop();
  if (producer_.joinable()) producer_.join();
}

std::optional<TicketChunk> TicketStream::next() {
  auto chunk = channel_.pop();
  obs::registry().gauge("stream.ticket_channel_depth").set(
      static_cast<double>(channel_.size()));
  return chunk;
}

void TicketStream::stop() {
  stop_.store(true, std::memory_order_relaxed);
  channel_.close();
}

void TicketStream::produce() {
  obs::Counter& tickets_emitted =
      obs::registry().counter("stream.tickets_emitted");
  obs::Counter& chunks_emitted = obs::registry().counter("stream.ticket_chunks");
  obs::Gauge& depth = obs::registry().gauge("stream.ticket_channel_depth");
  obs::Histogram& day_us = obs::registry().histogram("stream.day_sim_us");

  const util::Rng root = simdc::ticket_stream_root(options_.seed);
  const auto& racks = fleet_->racks();
  const util::DayIndex num_days = fleet_->spec().num_days;

  std::priority_queue<Pending, std::vector<Pending>, PendingAfter> pending;
  std::int32_t next_burst_id = 0;

  for (util::DayIndex day = 0; day < num_days; ++day) {
    if (stop_.load(std::memory_order_relaxed)) return;
    const obs::ScopedTimer timer(day_us);

    // Simulate every (rack, day) cell. Each cell's stream is split from
    // (root, rack.id, day), so running them on the pool in any schedule
    // makes the same draws as the batch rack-major sweep. Correlated-event
    // ids are cell-local here and offset below in rack order — exactly the
    // (day, rack, discovery) chronological numbering batch simulate() uses.
    auto cells = util::parallel_map(racks.size(), [&](std::size_t i) {
      std::vector<simdc::Ticket> out;
      const std::int32_t opened =
          simdc::simulate_rack_day(*hazard_, root, racks[i], day, 0, out);
      return std::pair<std::vector<simdc::Ticket>, std::int32_t>(std::move(out),
                                                                 opened);
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
      auto& [cell_tickets, opened] = cells[i];
      std::uint32_t seq = 0;
      for (simdc::Ticket& t : cell_tickets) {
        if (t.burst_id >= 0) t.burst_id += next_burst_id;
        pending.push(Pending{t, i, day, seq++});
      }
      next_burst_id += opened;
    }

    // Watermark: tickets generated on day e >= day + 1 open at or after
    // first_hour(e), so everything below first_hour(day + 1) is final. The
    // last day flushes everything, overhang included.
    const util::HourIndex watermark =
        day + 1 < num_days ? util::Calendar::first_hour(day + 1)
                           : std::numeric_limits<util::HourIndex>::max();
    TicketChunk chunk;
    chunk.day = day;
    while (!pending.empty() && pending.top().ticket.open_hour < watermark) {
      chunk.tickets.push_back(pending.top().ticket);
      pending.pop();
    }

    tickets_emitted.add(chunk.tickets.size());
    if (!channel_.push(std::move(chunk))) return;  // consumer stopped us
    chunks_emitted.add(1);
    depth.set(static_cast<double>(channel_.size()));
  }
  channel_.close();
}

TelemetryStream::TelemetryStream(const simdc::Fleet& fleet,
                                 const simdc::EnvironmentModel& env,
                                 SourceOptions options)
    : fleet_(&fleet),
      env_(&env),
      options_(options),
      channel_(options.channel_capacity) {
  util::require(options_.telemetry_samples_per_day > 0 &&
                    util::kHoursPerDay % options_.telemetry_samples_per_day == 0,
                "telemetry_samples_per_day must divide 24");
  producer_ = std::thread([this] { produce(); });
}

TelemetryStream::~TelemetryStream() {
  stop();
  if (producer_.joinable()) producer_.join();
}

std::optional<TelemetryChunk> TelemetryStream::next() {
  auto chunk = channel_.pop();
  obs::registry().gauge("stream.telemetry_channel_depth").set(
      static_cast<double>(channel_.size()));
  return chunk;
}

void TelemetryStream::stop() {
  stop_.store(true, std::memory_order_relaxed);
  channel_.close();
}

void TelemetryStream::produce() {
  obs::Counter& samples = obs::registry().counter("stream.telemetry_samples");
  obs::Gauge& depth = obs::registry().gauge("stream.telemetry_channel_depth");

  const auto& racks = fleet_->racks();
  const int stride = util::kHoursPerDay / options_.telemetry_samples_per_day;

  for (util::DayIndex day = 0; day < fleet_->spec().num_days; ++day) {
    if (stop_.load(std::memory_order_relaxed)) return;
    TelemetryChunk chunk;
    chunk.day = day;
    chunk.readings.reserve(racks.size() *
                           static_cast<std::size_t>(options_.telemetry_samples_per_day));
    for (const simdc::Rack& rack : racks) {
      for (int k = 0; k < options_.telemetry_samples_per_day; ++k) {
        const util::HourIndex hour =
            util::Calendar::first_hour(day) + k * stride;
        const simdc::Conditions c = env_->at(rack, hour);
        chunk.readings.push_back(
            {rack.id, hour, c.temperature_f, c.relative_humidity});
      }
    }
    samples.add(chunk.readings.size());
    if (!channel_.push(std::move(chunk))) return;
    depth.set(static_cast<double>(channel_.size()));
  }
  channel_.close();
}

}  // namespace rainshine::stream
