#include "rainshine/stream/store.hpp"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "rainshine/obs/metrics.hpp"
#include "rainshine/serve/artifact.hpp"  // serve::crc32
#include "rainshine/util/check.hpp"

namespace rainshine::stream {

namespace {

constexpr char kMagic[4] = {'R', 'S', 'S', '1'};
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr std::size_t kSlotRecordBytes = 32;  // {u32 count, u32 pad, f64 sum/min/max}

void append_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}
void append_u32(std::string& out, std::uint32_t v) { append_bytes(out, &v, 4); }
void append_u64(std::string& out, std::uint64_t v) { append_bytes(out, &v, 8); }
void append_i64(std::string& out, std::int64_t v) { append_bytes(out, &v, 8); }
void append_f64(std::string& out, double v) { append_bytes(out, &v, 8); }

/// Bounds-checked cursor over the snapshot payload.
struct Reader {
  const unsigned char* p;
  std::size_t remaining;

  void take(void* dst, std::size_t n) {
    if (n > remaining) throw snapshot_error("snapshot payload truncated");
    std::memcpy(dst, p, n);
    p += n;
    remaining -= n;
  }
  std::uint32_t u32() { std::uint32_t v; take(&v, 4); return v; }
  std::uint64_t u64() { std::uint64_t v; take(&v, 8); return v; }
  std::int64_t i64() { std::int64_t v; take(&v, 8); return v; }
  double f64() { double v; take(&v, 8); return v; }
};

}  // namespace

SeriesId SeriesStore::add_series(SeriesSpec spec) {
  util::require(!spec.name.empty(), "series name must be non-empty");
  util::require(!spec.tiers.empty(), "series needs at least one tier");
  for (const TierSpec& t : spec.tiers) {
    util::require(t.step_hours >= 1, "tier step_hours must be >= 1");
    util::require(t.slots >= 1, "tier slots must be >= 1");
  }
  std::unique_lock lock(mutex_);
  for (const Series& s : series_) {
    util::require(s.name != spec.name, "duplicate series name: " + spec.name);
  }
  Series series;
  series.name = std::move(spec.name);
  series.tiers.reserve(spec.tiers.size());
  for (const TierSpec& t : spec.tiers) {
    Tier tier;
    tier.spec = t;
    tier.slots.assign(t.slots, AggregateSample{});
    series.tiers.push_back(std::move(tier));
  }
  series_.push_back(std::move(series));
  return series_.size() - 1;
}

void SeriesStore::advance_to(Tier& t, std::int64_t bucket) {
  // Zero every bucket between the old head and the new one (bounded by the
  // ring length) so missed ticks read back as count-0 gaps, then stamp each
  // slot with its bucket start. Slots whose residue has no representative
  // yet stay default — they are outside the readable window by definition.
  const std::int64_t slots = static_cast<std::int64_t>(t.spec.slots);
  std::int64_t first = std::max<std::int64_t>(t.last_bucket + 1, bucket - slots + 1);
  first = std::max<std::int64_t>(first, 0);
  for (std::int64_t b = first; b <= bucket; ++b) {
    AggregateSample& slot = t.slots[static_cast<std::size_t>(b % slots)];
    slot = AggregateSample{};
    slot.bucket_start_hour = b * t.spec.step_hours;
  }
  t.last_bucket = bucket;
}

bool SeriesStore::push(SeriesId id, std::int64_t hour, double value) {
  std::unique_lock lock(mutex_);
  util::require(id < series_.size(), "unknown series id");
  Series& s = series_[id];
  if (hour < 0) {  // before the epoch: older than every tier's window
    lock.unlock();
    obs::registry().counter("stream.store_late_drops").add(1);
    return false;
  }
  s.last_hour = std::max(s.last_hour, hour);

  std::uint64_t late = 0;
  for (Tier& t : s.tiers) {
    const std::int64_t bucket = hour / t.spec.step_hours;
    if (bucket > t.last_bucket) advance_to(t, bucket);
    if (bucket <= t.last_bucket - static_cast<std::int64_t>(t.spec.slots)) {
      ++late;  // already rotated out of this tier's window
      continue;
    }
    AggregateSample& slot =
        t.slots[static_cast<std::size_t>(bucket % static_cast<std::int64_t>(t.spec.slots))];
    if (slot.count == 0) {
      slot.min = value;
      slot.max = value;
    } else {
      slot.min = std::min(slot.min, value);
      slot.max = std::max(slot.max, value);
    }
    slot.sum += value;
    ++slot.count;
  }
  lock.unlock();
  if (late > 0) obs::registry().counter("stream.store_late_drops").add(late);
  // False signals the sample was late for at least one tier — it may still
  // have folded into coarser tiers whose windows reach further back.
  return late == 0;
}

std::vector<AggregateSample> SeriesStore::read(SeriesId id, std::size_t tier,
                                               std::int64_t from_hour,
                                               std::int64_t to_hour) const {
  std::shared_lock lock(mutex_);
  util::require(id < series_.size(), "unknown series id");
  const Series& s = series_[id];
  util::require(tier < s.tiers.size(), "unknown tier index");
  const Tier& t = s.tiers[tier];
  if (t.last_bucket < 0 || to_hour <= 0) return {};

  const std::int64_t step = t.spec.step_hours;
  const std::int64_t slots = static_cast<std::int64_t>(t.spec.slots);
  std::int64_t lo = std::max<std::int64_t>(0, t.last_bucket - slots + 1);
  std::int64_t hi = t.last_bucket;
  if (from_hour > 0) {
    lo = std::max(lo, from_hour / step + (from_hour % step != 0 ? 1 : 0));
  }
  hi = std::min(hi, (to_hour - 1) / step);

  std::vector<AggregateSample> out;
  if (hi < lo) return out;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (std::int64_t b = lo; b <= hi; ++b) {
    const AggregateSample& slot = t.slots[static_cast<std::size_t>(b % slots)];
    util::ensure(slot.bucket_start_hour == b * step,
                 "ring slot does not hold its window bucket");
    out.push_back(slot);
  }
  return out;
}

SeriesId SeriesStore::id_of(std::string_view name) const {
  std::shared_lock lock(mutex_);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) return i;
  }
  throw std::out_of_range("unknown series: " + std::string(name));
}

bool SeriesStore::contains(std::string_view name) const {
  std::shared_lock lock(mutex_);
  return std::any_of(series_.begin(), series_.end(),
                     [&](const Series& s) { return s.name == name; });
}

std::vector<SeriesSpec> SeriesStore::describe() const {
  std::shared_lock lock(mutex_);
  std::vector<SeriesSpec> out;
  out.reserve(series_.size());
  for (const Series& s : series_) {
    SeriesSpec spec;
    spec.name = s.name;
    for (const Tier& t : s.tiers) spec.tiers.push_back(t.spec);
    out.push_back(std::move(spec));
  }
  return out;
}

std::size_t SeriesStore::num_series() const {
  std::shared_lock lock(mutex_);
  return series_.size();
}

std::int64_t SeriesStore::last_hour(SeriesId id) const {
  std::shared_lock lock(mutex_);
  util::require(id < series_.size(), "unknown series id");
  return series_[id].last_hour;
}

std::size_t SeriesStore::memory_bytes() const {
  std::shared_lock lock(mutex_);
  std::size_t total = sizeof(SeriesStore) + series_.capacity() * sizeof(Series);
  for (const Series& s : series_) {
    total += s.name.capacity();
    total += s.tiers.capacity() * sizeof(Tier);
    for (const Tier& t : s.tiers) {
      total += t.slots.capacity() * sizeof(AggregateSample);
    }
  }
  return total;
}

void SeriesStore::snapshot(std::ostream& out) const {
  std::shared_lock lock(mutex_);
  std::string payload;
  append_u32(payload, static_cast<std::uint32_t>(series_.size()));
  for (const Series& s : series_) {
    append_u32(payload, static_cast<std::uint32_t>(s.name.size()));
    append_bytes(payload, s.name.data(), s.name.size());
    append_i64(payload, s.last_hour);
    append_u32(payload, static_cast<std::uint32_t>(s.tiers.size()));
    for (const Tier& t : s.tiers) {
      append_i64(payload, t.spec.step_hours);
      append_u64(payload, t.spec.slots);
      append_i64(payload, t.last_bucket);
      // Slot records are fixed-width and 8-byte aligned within the payload
      // so a future mmap reader can point straight at the array.
      while (payload.size() % 8 != 0) payload.push_back('\0');
      for (const AggregateSample& slot : t.slots) {
        append_u32(payload, slot.count);
        append_u32(payload, 0);  // reserved
        append_f64(payload, slot.sum);
        append_f64(payload, slot.min);
        append_f64(payload, slot.max);
      }
    }
  }
  out.write(kMagic, 4);
  std::uint32_t version = kSnapshotVersion;
  out.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint64_t payload_size = payload.size();
  out.write(reinterpret_cast<const char*>(&payload_size), 8);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  const std::uint32_t crc = serve::crc32(
      {reinterpret_cast<const unsigned char*>(payload.data()), payload.size()});
  out.write(reinterpret_cast<const char*>(&crc), 4);
  util::ensure(out.good(), "snapshot write failed");
}

void SeriesStore::restore(std::istream& in) {
  std::unique_lock lock(mutex_);
  if (!series_.empty()) throw snapshot_error("restore() needs an empty store");

  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  in.read(magic, 4);
  in.read(reinterpret_cast<char*>(&version), 4);
  in.read(reinterpret_cast<char*>(&payload_size), 8);
  if (!in.good()) throw snapshot_error("snapshot header truncated");
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw snapshot_error("not a series snapshot (bad magic)");
  }
  if (version != kSnapshotVersion) {
    throw snapshot_error("unsupported snapshot version " + std::to_string(version));
  }
  if (payload_size > (1ull << 34)) {
    throw snapshot_error("implausible snapshot payload size");
  }
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (in.gcount() != static_cast<std::streamsize>(payload_size)) {
    throw snapshot_error("snapshot payload truncated");
  }
  std::uint32_t stored_crc = 0;
  in.read(reinterpret_cast<char*>(&stored_crc), 4);
  if (!in.good()) throw snapshot_error("snapshot checksum missing");
  const std::uint32_t crc = serve::crc32(
      {reinterpret_cast<const unsigned char*>(payload.data()), payload.size()});
  if (crc != stored_crc) throw snapshot_error("snapshot checksum mismatch");
  if (in.peek() != std::istream::traits_type::eof()) {
    throw snapshot_error("trailing bytes after snapshot checksum");
  }

  Reader r{reinterpret_cast<const unsigned char*>(payload.data()), payload.size()};
  std::vector<Series> parsed;
  const std::uint32_t num_series = r.u32();
  parsed.reserve(num_series);
  std::size_t consumed_prefix = 0;  // bytes consumed so far, for alignment
  for (std::uint32_t si = 0; si < num_series; ++si) {
    Series s;
    const std::uint32_t name_len = r.u32();
    if (name_len == 0 || name_len > 4096) {
      throw snapshot_error("malformed series name length");
    }
    s.name.resize(name_len);
    r.take(s.name.data(), name_len);
    for (const Series& prev : parsed) {
      if (prev.name == s.name) throw snapshot_error("duplicate series name");
    }
    s.last_hour = r.i64();
    const std::uint32_t num_tiers = r.u32();
    if (num_tiers == 0 || num_tiers > 64) {
      throw snapshot_error("malformed tier count");
    }
    s.tiers.reserve(num_tiers);
    for (std::uint32_t ti = 0; ti < num_tiers; ++ti) {
      Tier t;
      t.spec.step_hours = r.i64();
      const std::uint64_t slots = r.u64();
      t.last_bucket = r.i64();
      if (t.spec.step_hours < 1 || slots < 1 || slots > (1u << 26) ||
          t.last_bucket < -1) {
        throw snapshot_error("malformed tier shape");
      }
      t.spec.slots = static_cast<std::size_t>(slots);
      consumed_prefix = payload.size() - r.remaining;
      while (consumed_prefix % 8 != 0) {
        char pad = 0;
        r.take(&pad, 1);
        if (pad != 0) throw snapshot_error("malformed alignment padding");
        ++consumed_prefix;
      }
      t.slots.assign(t.spec.slots, AggregateSample{});
      for (AggregateSample& slot : t.slots) {
        slot.count = r.u32();
        (void)r.u32();  // reserved
        slot.sum = r.f64();
        slot.min = r.f64();
        slot.max = r.f64();
      }
      // Re-derive each window slot's bucket start from the ring geometry —
      // it is not stored (the invariant read() checks).
      if (t.last_bucket >= 0) {
        const std::int64_t nslots = static_cast<std::int64_t>(t.spec.slots);
        const std::int64_t lo = std::max<std::int64_t>(0, t.last_bucket - nslots + 1);
        for (std::int64_t b = lo; b <= t.last_bucket; ++b) {
          t.slots[static_cast<std::size_t>(b % nslots)].bucket_start_hour =
              b * t.spec.step_hours;
        }
      }
      s.tiers.push_back(std::move(t));
    }
    parsed.push_back(std::move(s));
  }
  if (r.remaining != 0) throw snapshot_error("trailing bytes after snapshot payload");
  series_ = std::move(parsed);
}

}  // namespace rainshine::stream
