#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite.
#
#   scripts/check.sh               # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize    # additionally an ASan+UBSan build + ctest
#
# Extra arguments after the flags are forwarded to ctest (e.g. -R Ingest).
set -euo pipefail

cd "$(dirname "$0")/.."

sanitize=0
if [[ "${1:-}" == "--sanitize" ]]; then
  sanitize=1
  shift
fi

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}"
}

ctest_args=("$@")

echo "== tier-1: build + ctest =="
run_suite build

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitizers: ASan+UBSan build + ctest =="
  run_suite build-asan -DRAINSHINE_SANITIZE=ON
fi

echo "OK"
