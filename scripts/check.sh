#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite.
#
#   scripts/check.sh               # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize    # additionally an ASan+UBSan build + ctest
#   scripts/check.sh --tsan        # additionally a ThreadSanitizer build + ctest
#   scripts/check.sh --serve-smoke # additionally run the modelc -> score
#                                  # artifact pipeline end-to-end
#
# Flags combine (e.g. `--sanitize --tsan` runs all three suites). Extra
# arguments after the flags are forwarded to ctest (e.g. -R Ingest).
set -euo pipefail

cd "$(dirname "$0")/.."

sanitize=0
tsan=0
serve_smoke=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --sanitize) sanitize=1 ;;
    --tsan) tsan=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}"
}

ctest_args=("$@")

# The parallel layer resolves RAINSHINE_THREADS first, hardware second
# (src/util/include/rainshine/util/parallel.hpp).
echo "== threads: ${RAINSHINE_THREADS:-$(nproc)} (RAINSHINE_THREADS=${RAINSHINE_THREADS:-unset}, nproc=$(nproc)) =="

echo "== tier-1: build + ctest =="
run_suite build

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitizers: ASan+UBSan build + ctest =="
  run_suite build-asan -DRAINSHINE_SANITIZE=ON
fi

if [[ "$tsan" == 1 ]]; then
  echo "== sanitizers: TSan build + ctest =="
  run_suite build-tsan -DRAINSHINE_TSAN=ON
fi

if [[ "$serve_smoke" == 1 ]]; then
  echo "== serve smoke: modelc -> score pipeline =="
  workdir="$(mktemp -d)"
  trap 'rm -rf "$workdir"' EXIT
  ./build/tools/rainshine_modelc --demo --days 60 --trees 8 \
    --output "$workdir/demo.rsf" --export-csv "$workdir/rows.csv"
  ./build/tools/rainshine_score --model "$workdir/demo.rsf" \
    --input "$workdir/rows.csv" --output "$workdir/scored.csv" --stats
  rows=$(($(wc -l < "$workdir/rows.csv") - 1))
  scored=$(($(wc -l < "$workdir/scored.csv") - 1))
  if [[ "$rows" != "$scored" ]]; then
    echo "serve smoke FAILED: scored $scored rows, expected $rows" >&2
    exit 1
  fi
  echo "serve smoke: scored $scored/$rows rows"
fi

echo "OK"
