#!/usr/bin/env bash
# Tier-1 verification: configure, build and run the full test suite.
#
#   scripts/check.sh               # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize    # additionally an ASan+UBSan build + ctest
#   scripts/check.sh --tsan        # additionally a ThreadSanitizer build + ctest
#   scripts/check.sh --serve-smoke # additionally run the modelc -> score
#                                  # artifact pipeline end-to-end
#   scripts/check.sh --net-smoke   # additionally boot rainshine_serve on an
#                                  # ephemeral port, score over a real socket,
#                                  # scrape /metrics, SIGTERM-drain, and check
#                                  # the interrupted-run metrics sidecars
#   scripts/check.sh --stream-smoke# additionally boot rainshine_streamd,
#                                  # observe >= 1 rolling retrain + hot swap,
#                                  # scrape /series and /models, SIGTERM-drain,
#                                  # and validate the store snapshot + sidecar
#   scripts/check.sh --scale-smoke # additionally stream a ~100k-server fleet
#                                  # through simulate_streamed and assert
#                                  # nonzero tickets under the peak-RSS bound
#                                  # (RAINSHINE_RSS_BOUND_MB, default 32)
#   scripts/check.sh --predict-smoke # additionally fit + evaluate the
#                                  # early-warning study on a tiny fleet
#                                  # (asserts it beats the naive baseline),
#                                  # validate BENCH_predict.json, and check
#                                  # one rainshine_whatif sweep is
#                                  # byte-identical across RAINSHINE_THREADS
#
# Flags combine (e.g. `--sanitize --tsan` runs all three suites). Extra
# arguments after the flags are forwarded to ctest (e.g. -R Ingest).
set -euo pipefail

cd "$(dirname "$0")/.."

sanitize=0
tsan=0
serve_smoke=0
net_smoke=0
stream_smoke=0
scale_smoke=0
predict_smoke=0
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --sanitize) sanitize=1 ;;
    --tsan) tsan=1 ;;
    --serve-smoke) serve_smoke=1 ;;
    --net-smoke) net_smoke=1 ;;
    --stream-smoke) stream_smoke=1 ;;
    --scale-smoke) scale_smoke=1 ;;
    --predict-smoke) predict_smoke=1 ;;
    *) echo "unknown flag: $1" >&2; exit 2 ;;
  esac
  shift
done

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "${ctest_args[@]}"
}

ctest_args=("$@")

# The parallel layer resolves RAINSHINE_THREADS first, hardware second
# (src/util/include/rainshine/util/parallel.hpp).
echo "== threads: ${RAINSHINE_THREADS:-$(nproc)} (RAINSHINE_THREADS=${RAINSHINE_THREADS:-unset}, nproc=$(nproc)) =="

echo "== tier-1: build + ctest =="
run_suite build

if [[ "$sanitize" == 1 ]]; then
  echo "== sanitizers: ASan+UBSan build + ctest =="
  run_suite build-asan -DRAINSHINE_SANITIZE=ON
fi

if [[ "$tsan" == 1 ]]; then
  echo "== sanitizers: TSan build + ctest =="
  run_suite build-tsan -DRAINSHINE_TSAN=ON
fi

if [[ "$serve_smoke" == 1 ]]; then
  echo "== serve smoke: modelc -> score pipeline =="
  workdir="$(mktemp -d)"
  trap 'rm -rf "${workdir:-}" "${netdir:-}"' EXIT
  ./build/tools/rainshine_modelc --demo --days 60 --trees 8 \
    --output "$workdir/demo.rsf" --export-csv "$workdir/rows.csv" \
    --metrics "$workdir/fit_metrics.json"
  ./build/tools/rainshine_score --model "$workdir/demo.rsf" \
    --input "$workdir/rows.csv" --output "$workdir/scored.csv" --stats \
    --metrics "$workdir/score_metrics.json"
  rows=$(($(wc -l < "$workdir/rows.csv") - 1))
  scored=$(($(wc -l < "$workdir/scored.csv") - 1))
  if [[ "$rows" != "$scored" ]]; then
    echo "serve smoke FAILED: scored $scored rows, expected $rows" >&2
    exit 1
  fi
  echo "serve smoke: scored $scored/$rows rows"

  # Both inference engines must produce byte-identical output end-to-end
  # (the flat compiled layout is the default; the pointer walker is the
  # golden reference it is held to).
  ./build/tools/rainshine_score --model "$workdir/demo.rsf" --scorer flat \
    --input "$workdir/rows.csv" --output "$workdir/scored_flat.csv"
  ./build/tools/rainshine_score --model "$workdir/demo.rsf" --scorer walker \
    --input "$workdir/rows.csv" --output "$workdir/scored_walker.csv"
  if ! cmp -s "$workdir/scored_flat.csv" "$workdir/scored_walker.csv"; then
    echo "serve smoke FAILED: flat and walker scorers disagree" >&2
    diff "$workdir/scored_flat.csv" "$workdir/scored_walker.csv" | head >&2
    exit 1
  fi
  echo "serve smoke: flat and walker outputs byte-identical"

  echo "== metrics smoke: sidecars parse and carry the expected series =="
  # modelc --demo fits straight from the simulated log (no ingest pass).
  ./build/tools/rainshine_metrics --check "$workdir/fit_metrics.json" \
    --require simdc.tickets_generated,cart.trees_grown,cart.split_search_us
  ./build/tools/rainshine_metrics --check "$workdir/score_metrics.json" \
    --require serve.requests_completed,serve.rows_scored,serve.latency_us
  ./build/tools/rainshine_metrics --demo --days 30 --format json \
    --output "$workdir/demo_metrics.json" --trace "$workdir/spans.csv"
  ./build/tools/rainshine_metrics --check "$workdir/demo_metrics.json" \
    --require simdc.tickets_generated,ingest.rows_ingested,cart.trees_grown,serve.rows_scored
  if [[ "$(head -1 "$workdir/spans.csv")" != "name,thread,depth,start_us,duration_us" ]]; then
    echo "metrics smoke FAILED: unexpected span CSV header" >&2
    exit 1
  fi
  # The benches' atexit sidecar (no per-bench flag plumbing).
  RAINSHINE_DAYS=60 RAINSHINE_STRIDE=6 RAINSHINE_METRICS="$workdir/bench_metrics.json" \
    ./build/bench/bench_table2_ticket_mix >/dev/null
  ./build/tools/rainshine_metrics --check "$workdir/bench_metrics.json" \
    --require simdc.tickets_generated,simdc.simulate_us
  echo "metrics smoke: 4 sidecars validated, $(($(wc -l < "$workdir/spans.csv") - 1)) spans traced"
fi

if [[ "$net_smoke" == 1 ]]; then
  echo "== net smoke: serve over a real socket, drain on SIGTERM =="
  netdir="$(mktemp -d)"
  trap 'rm -rf "${workdir:-}" "${netdir:-}"' EXIT
  ./build/tools/rainshine_modelc --demo --days 60 --trees 8 \
    --output "$netdir/demo.rsf" --export-csv "$netdir/rows.csv" >/dev/null

  ./build/tools/rainshine_serve --model "$netdir/demo.rsf" --port 0 \
    --metrics "$netdir/serve_metrics.json" > "$netdir/serve.out" \
    2> "$netdir/serve.err" &
  serve_pid=$!
  # The tool prints "listening on HOST:PORT (scorer=...)" once bound.
  port=""
  for _ in $(seq 1 50); do
    port="$(sed -n 's/^listening on [^:]*:\([0-9]*\).*$/\1/p' "$netdir/serve.out")"
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "net smoke FAILED: server never reported its port" >&2
    cat "$netdir/serve.err" >&2
    exit 1
  fi

  ./build/tools/rainshine_loadgen --once --port "$port" --target /healthz \
    >/dev/null
  ./build/tools/rainshine_loadgen --once --port "$port" --target /score \
    --body-file "$netdir/rows.csv" > "$netdir/scored.csv"
  rows=$(($(wc -l < "$netdir/rows.csv") - 1))
  scored=$(($(wc -l < "$netdir/scored.csv") - 1))
  if [[ "$rows" != "$scored" ]]; then
    echo "net smoke FAILED: scored $scored rows over the wire, expected $rows" >&2
    exit 1
  fi
  ./build/tools/rainshine_loadgen --once --port "$port" \
    --target '/metrics?format=json' > "$netdir/scrape.json"

  # Graceful drain: SIGTERM must finish admitted work, flush the metrics
  # sidecar, and exit 0.
  kill -TERM "$serve_pid"
  if ! wait "$serve_pid"; then
    echo "net smoke FAILED: server did not exit 0 on SIGTERM" >&2
    cat "$netdir/serve.err" >&2
    exit 1
  fi
  ./build/tools/rainshine_metrics --check "$netdir/serve_metrics.json" \
    --require net.requests_total,net.connections_accepted,serve.requests_completed
  ./build/tools/rainshine_metrics --check "$netdir/scrape.json" \
    --require net.requests_total,serve.requests_completed
  echo "net smoke: scored $scored/$rows rows over 127.0.0.1:$port, drained clean"

  echo "== net smoke: interrupted batch run still writes its sidecar =="
  # Pile up enough rows that the scoring run outlives the SIGINT we send it.
  tail -n +2 "$netdir/rows.csv" > "$netdir/row_body.csv"
  { head -1 "$netdir/rows.csv"
    for _ in $(seq 1 6); do cat "$netdir/row_body.csv"; done
  } > "$netdir/big_rows.csv"
  ./build/tools/rainshine_score --model "$netdir/demo.rsf" \
    --input "$netdir/big_rows.csv" --output "$netdir/big_scored.csv" \
    --metrics "$netdir/int_metrics.json" >/dev/null 2>&1 &
  score_pid=$!
  sleep 0.1
  kill -INT "$score_pid" 2>/dev/null || true
  wait "$score_pid" || true  # 130 if interrupted, 0 if it won the race
  # Either way the sidecar must exist and parse: the interrupt handler (or
  # the normal exit path) flushed it.
  ./build/tools/rainshine_metrics --check "$netdir/int_metrics.json" \
    --require serve.rows_scored
  echo "net smoke: interrupted run's sidecar parsed"
fi

if [[ "$stream_smoke" == 1 ]]; then
  echo "== stream smoke: streamd end-to-end (source -> store -> retrain -> serve) =="
  streamdir="$(mktemp -d)"
  trap 'rm -rf "${workdir:-}" "${netdir:-}" "${streamdir:-}"' EXIT

  # 45 streamed days at a 15-day cadence: three rolling retrains, the first
  # of which boots the HTTP front-end; the rest hot-swap it live.
  ./build/tools/rainshine_streamd --days 45 --retrain-days 15 \
    --window-days 30 --min-history 15 --trees 8 --port 0 \
    --snapshot "$streamdir/store.rss" \
    --metrics "$streamdir/stream_metrics.json" > "$streamdir/streamd.out" \
    2> "$streamdir/streamd.err" &
  streamd_pid=$!
  port=""
  for _ in $(seq 1 300); do
    port="$(sed -n 's/^listening on [^:]*:\([0-9]*\).*$/\1/p' "$streamdir/streamd.out")"
    [[ -n "$port" ]] && break
    sleep 0.2
  done
  if [[ -z "$port" ]]; then
    echo "stream smoke FAILED: streamd never published a model / bound a port" >&2
    cat "$streamdir/streamd.err" >&2
    exit 1
  fi

  # Let the stream finish so every retrain lands, then look for the swaps.
  for _ in $(seq 1 300); do
    grep -q 'streamed .* day' "$streamdir/streamd.err" && break
    sleep 0.2
  done
  swaps="$(grep -c '^day [0-9]*: published' "$streamdir/streamd.err" || true)"
  if [[ "$swaps" -lt 3 ]]; then
    echo "stream smoke FAILED: expected >= 3 retrain publishes, saw $swaps" >&2
    cat "$streamdir/streamd.err" >&2
    exit 1
  fi

  # The registry's swap generation must reflect every publish, and the ring
  # store must serve per-rack telemetry series over the wire.
  ./build/tools/rainshine_loadgen --once --port "$port" --target /models \
    > "$streamdir/models.json"
  if ! grep -q '"swap_generation":3' "$streamdir/models.json"; then
    echo "stream smoke FAILED: /models does not report swap generation 3" >&2
    cat "$streamdir/models.json" >&2
    exit 1
  fi
  ./build/tools/rainshine_loadgen --once --port "$port" --target /series \
    > "$streamdir/series.json"
  if ! grep -q '"name":"env.temp_f.R0"' "$streamdir/series.json"; then
    echo "stream smoke FAILED: /series catalogue is missing rack telemetry" >&2
    exit 1
  fi
  ./build/tools/rainshine_loadgen --once --port "$port" \
    --target '/series?series=env.temp_f.R0&tier=1&max_points=8' \
    > "$streamdir/series_read.json"
  if ! grep -q '"count":24' "$streamdir/series_read.json"; then
    echo "stream smoke FAILED: daily tier did not aggregate 24 hourly samples" >&2
    cat "$streamdir/series_read.json" >&2
    exit 1
  fi

  # Clean SIGTERM drain: exit 0, snapshot written, metrics sidecar parses.
  kill -TERM "$streamd_pid"
  if ! wait "$streamd_pid"; then
    echo "stream smoke FAILED: streamd did not exit 0 on SIGTERM" >&2
    cat "$streamdir/streamd.err" >&2
    exit 1
  fi
  if [[ ! -s "$streamdir/store.rss" ]]; then
    echo "stream smoke FAILED: no store snapshot written" >&2
    exit 1
  fi
  ./build/tools/rainshine_metrics --check "$streamdir/stream_metrics.json" \
    --require stream.tickets_emitted,stream.retrains,serve.model_swaps,net.requests_total
  echo "stream smoke: $swaps retrains hot-swapped, /series scraped, drained clean"
fi

if [[ "$scale_smoke" == 1 ]]; then
  echo "== scale smoke: 100k-server streamed sweep under the RSS bound =="
  # The binary asserts both halves itself (nonzero tickets, VmHWM under
  # RAINSHINE_RSS_BOUND_MB) and exits nonzero on violation. The default
  # 32 MiB bound is one a design holding the fleet's full-window tickets
  # resident could not meet (see bench/bench_simdc_scale.cpp).
  ./build/bench/bench_simdc_scale --smoke
fi

if [[ "$predict_smoke" == 1 ]]; then
  echo "== predict smoke: early-warning study + whatif determinism =="
  predictdir="$(mktemp -d)"
  trap 'rm -rf "${workdir:-}" "${netdir:-}" "${streamdir:-}" "${predictdir:-}"' EXIT

  # The bench asserts the acceptance bar itself under --smoke: the risk
  # forest must beat the trailing-count baseline on precision at the 5%
  # alert budget AND on median lead-time, else it exits nonzero.
  ./build/bench/bench_predict --smoke > "$predictdir/BENCH_predict.json"
  ./build/tools/rainshine_metrics --check "$predictdir/BENCH_predict.json" \
    --require model_precision_at_budget,baseline_precision_at_budget,model_median_lead_days,baseline_median_lead_days,model_lead_deciles_days
  echo "predict smoke: bench beat the baseline, BENCH_predict.json validated"

  # One whatif sweep (predictor included) must be byte-identical across
  # thread counts, stderr predictor summary included.
  whatif_flags=(--days 160 --trees 8 --warmup 50 --stride 7
                --offsets -2,0,4 --slas 0.95,1.0 --sort tco)
  RAINSHINE_THREADS=1 ./build/tools/rainshine_whatif "${whatif_flags[@]}" \
    > "$predictdir/whatif_t1.out" 2> "$predictdir/whatif_t1.err"
  RAINSHINE_THREADS=2 ./build/tools/rainshine_whatif "${whatif_flags[@]}" \
    > "$predictdir/whatif_t2.out" 2> "$predictdir/whatif_t2.err"
  if ! cmp -s "$predictdir/whatif_t1.out" "$predictdir/whatif_t2.out" ||
     ! cmp -s "$predictdir/whatif_t1.err" "$predictdir/whatif_t2.err"; then
    echo "predict smoke FAILED: whatif output differs across RAINSHINE_THREADS" >&2
    diff "$predictdir/whatif_t1.out" "$predictdir/whatif_t2.out" | head >&2
    exit 1
  fi
  if ! grep -q '^\* ' "$predictdir/whatif_t1.out"; then
    echo "predict smoke FAILED: whatif table has no best-policy marker" >&2
    cat "$predictdir/whatif_t1.out" >&2
    exit 1
  fi
  echo "predict smoke: whatif sweep byte-identical across thread counts"
fi

echo "OK"
