file(REMOVE_RECURSE
  "CMakeFiles/vendor_scorecard.dir/vendor_scorecard.cpp.o"
  "CMakeFiles/vendor_scorecard.dir/vendor_scorecard.cpp.o.d"
  "vendor_scorecard"
  "vendor_scorecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
