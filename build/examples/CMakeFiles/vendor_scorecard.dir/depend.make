# Empty dependencies file for vendor_scorecard.
# This may be replaced when dependencies are built.
