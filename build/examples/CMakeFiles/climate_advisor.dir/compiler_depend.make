# Empty compiler generated dependencies file for climate_advisor.
# This may be replaced when dependencies are built.
