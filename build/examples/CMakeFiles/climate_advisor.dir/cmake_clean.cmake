file(REMOVE_RECURSE
  "CMakeFiles/climate_advisor.dir/climate_advisor.cpp.o"
  "CMakeFiles/climate_advisor.dir/climate_advisor.cpp.o.d"
  "climate_advisor"
  "climate_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
