file(REMOVE_RECURSE
  "CMakeFiles/spare_planner.dir/spare_planner.cpp.o"
  "CMakeFiles/spare_planner.dir/spare_planner.cpp.o.d"
  "spare_planner"
  "spare_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spare_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
