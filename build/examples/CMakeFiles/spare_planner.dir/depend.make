# Empty dependencies file for spare_planner.
# This may be replaced when dependencies are built.
