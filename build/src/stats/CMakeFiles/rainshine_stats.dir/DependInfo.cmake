
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/src/bootstrap.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/bootstrap.cpp.o.d"
  "/root/repo/src/stats/src/correlation.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/correlation.cpp.o.d"
  "/root/repo/src/stats/src/descriptive.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/descriptive.cpp.o.d"
  "/root/repo/src/stats/src/distributions.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/distributions.cpp.o.d"
  "/root/repo/src/stats/src/ecdf.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/ecdf.cpp.o.d"
  "/root/repo/src/stats/src/histogram.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/histogram.cpp.o.d"
  "/root/repo/src/stats/src/survival.cpp" "src/stats/CMakeFiles/rainshine_stats.dir/src/survival.cpp.o" "gcc" "src/stats/CMakeFiles/rainshine_stats.dir/src/survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rainshine_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
