file(REMOVE_RECURSE
  "librainshine_stats.a"
)
