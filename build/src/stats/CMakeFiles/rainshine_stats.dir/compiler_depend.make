# Empty compiler generated dependencies file for rainshine_stats.
# This may be replaced when dependencies are built.
