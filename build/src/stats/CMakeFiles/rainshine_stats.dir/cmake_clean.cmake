file(REMOVE_RECURSE
  "CMakeFiles/rainshine_stats.dir/src/bootstrap.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/bootstrap.cpp.o.d"
  "CMakeFiles/rainshine_stats.dir/src/correlation.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/correlation.cpp.o.d"
  "CMakeFiles/rainshine_stats.dir/src/descriptive.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/descriptive.cpp.o.d"
  "CMakeFiles/rainshine_stats.dir/src/distributions.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/distributions.cpp.o.d"
  "CMakeFiles/rainshine_stats.dir/src/ecdf.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/ecdf.cpp.o.d"
  "CMakeFiles/rainshine_stats.dir/src/histogram.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/histogram.cpp.o.d"
  "CMakeFiles/rainshine_stats.dir/src/survival.cpp.o"
  "CMakeFiles/rainshine_stats.dir/src/survival.cpp.o.d"
  "librainshine_stats.a"
  "librainshine_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
