# Empty dependencies file for rainshine_tco.
# This may be replaced when dependencies are built.
