file(REMOVE_RECURSE
  "librainshine_tco.a"
)
