file(REMOVE_RECURSE
  "CMakeFiles/rainshine_tco.dir/src/cost_model.cpp.o"
  "CMakeFiles/rainshine_tco.dir/src/cost_model.cpp.o.d"
  "librainshine_tco.a"
  "librainshine_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
