# Empty compiler generated dependencies file for rainshine_table.
# This may be replaced when dependencies are built.
