file(REMOVE_RECURSE
  "librainshine_table.a"
)
