
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/src/column.cpp" "src/table/CMakeFiles/rainshine_table.dir/src/column.cpp.o" "gcc" "src/table/CMakeFiles/rainshine_table.dir/src/column.cpp.o.d"
  "/root/repo/src/table/src/csv.cpp" "src/table/CMakeFiles/rainshine_table.dir/src/csv.cpp.o" "gcc" "src/table/CMakeFiles/rainshine_table.dir/src/csv.cpp.o.d"
  "/root/repo/src/table/src/groupby.cpp" "src/table/CMakeFiles/rainshine_table.dir/src/groupby.cpp.o" "gcc" "src/table/CMakeFiles/rainshine_table.dir/src/groupby.cpp.o.d"
  "/root/repo/src/table/src/table.cpp" "src/table/CMakeFiles/rainshine_table.dir/src/table.cpp.o" "gcc" "src/table/CMakeFiles/rainshine_table.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rainshine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rainshine_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
