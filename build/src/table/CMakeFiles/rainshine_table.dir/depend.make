# Empty dependencies file for rainshine_table.
# This may be replaced when dependencies are built.
