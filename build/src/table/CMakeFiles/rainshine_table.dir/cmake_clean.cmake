file(REMOVE_RECURSE
  "CMakeFiles/rainshine_table.dir/src/column.cpp.o"
  "CMakeFiles/rainshine_table.dir/src/column.cpp.o.d"
  "CMakeFiles/rainshine_table.dir/src/csv.cpp.o"
  "CMakeFiles/rainshine_table.dir/src/csv.cpp.o.d"
  "CMakeFiles/rainshine_table.dir/src/groupby.cpp.o"
  "CMakeFiles/rainshine_table.dir/src/groupby.cpp.o.d"
  "CMakeFiles/rainshine_table.dir/src/table.cpp.o"
  "CMakeFiles/rainshine_table.dir/src/table.cpp.o.d"
  "librainshine_table.a"
  "librainshine_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
