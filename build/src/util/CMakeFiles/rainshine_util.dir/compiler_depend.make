# Empty compiler generated dependencies file for rainshine_util.
# This may be replaced when dependencies are built.
