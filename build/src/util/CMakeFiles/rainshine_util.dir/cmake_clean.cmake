file(REMOVE_RECURSE
  "CMakeFiles/rainshine_util.dir/src/calendar.cpp.o"
  "CMakeFiles/rainshine_util.dir/src/calendar.cpp.o.d"
  "CMakeFiles/rainshine_util.dir/src/rng.cpp.o"
  "CMakeFiles/rainshine_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/rainshine_util.dir/src/strings.cpp.o"
  "CMakeFiles/rainshine_util.dir/src/strings.cpp.o.d"
  "librainshine_util.a"
  "librainshine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
