file(REMOVE_RECURSE
  "librainshine_util.a"
)
