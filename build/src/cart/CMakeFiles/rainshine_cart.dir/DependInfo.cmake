
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cart/src/dataset.cpp" "src/cart/CMakeFiles/rainshine_cart.dir/src/dataset.cpp.o" "gcc" "src/cart/CMakeFiles/rainshine_cart.dir/src/dataset.cpp.o.d"
  "/root/repo/src/cart/src/forest.cpp" "src/cart/CMakeFiles/rainshine_cart.dir/src/forest.cpp.o" "gcc" "src/cart/CMakeFiles/rainshine_cart.dir/src/forest.cpp.o.d"
  "/root/repo/src/cart/src/grow.cpp" "src/cart/CMakeFiles/rainshine_cart.dir/src/grow.cpp.o" "gcc" "src/cart/CMakeFiles/rainshine_cart.dir/src/grow.cpp.o.d"
  "/root/repo/src/cart/src/partial.cpp" "src/cart/CMakeFiles/rainshine_cart.dir/src/partial.cpp.o" "gcc" "src/cart/CMakeFiles/rainshine_cart.dir/src/partial.cpp.o.d"
  "/root/repo/src/cart/src/prune.cpp" "src/cart/CMakeFiles/rainshine_cart.dir/src/prune.cpp.o" "gcc" "src/cart/CMakeFiles/rainshine_cart.dir/src/prune.cpp.o.d"
  "/root/repo/src/cart/src/tree.cpp" "src/cart/CMakeFiles/rainshine_cart.dir/src/tree.cpp.o" "gcc" "src/cart/CMakeFiles/rainshine_cart.dir/src/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rainshine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rainshine_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/rainshine_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
