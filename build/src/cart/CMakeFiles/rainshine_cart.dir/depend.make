# Empty dependencies file for rainshine_cart.
# This may be replaced when dependencies are built.
