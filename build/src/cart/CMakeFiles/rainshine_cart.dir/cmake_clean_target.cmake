file(REMOVE_RECURSE
  "librainshine_cart.a"
)
