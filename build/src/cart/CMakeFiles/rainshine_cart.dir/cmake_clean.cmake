file(REMOVE_RECURSE
  "CMakeFiles/rainshine_cart.dir/src/dataset.cpp.o"
  "CMakeFiles/rainshine_cart.dir/src/dataset.cpp.o.d"
  "CMakeFiles/rainshine_cart.dir/src/forest.cpp.o"
  "CMakeFiles/rainshine_cart.dir/src/forest.cpp.o.d"
  "CMakeFiles/rainshine_cart.dir/src/grow.cpp.o"
  "CMakeFiles/rainshine_cart.dir/src/grow.cpp.o.d"
  "CMakeFiles/rainshine_cart.dir/src/partial.cpp.o"
  "CMakeFiles/rainshine_cart.dir/src/partial.cpp.o.d"
  "CMakeFiles/rainshine_cart.dir/src/prune.cpp.o"
  "CMakeFiles/rainshine_cart.dir/src/prune.cpp.o.d"
  "CMakeFiles/rainshine_cart.dir/src/tree.cpp.o"
  "CMakeFiles/rainshine_cart.dir/src/tree.cpp.o.d"
  "librainshine_cart.a"
  "librainshine_cart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_cart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
