
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/environment_analysis.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/environment_analysis.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/environment_analysis.cpp.o.d"
  "/root/repo/src/core/src/marginals.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/marginals.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/marginals.cpp.o.d"
  "/root/repo/src/core/src/metrics.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/metrics.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/metrics.cpp.o.d"
  "/root/repo/src/core/src/observations.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/observations.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/observations.cpp.o.d"
  "/root/repo/src/core/src/prediction.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/prediction.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/prediction.cpp.o.d"
  "/root/repo/src/core/src/provisioning.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/provisioning.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/provisioning.cpp.o.d"
  "/root/repo/src/core/src/repair_analytics.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/repair_analytics.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/repair_analytics.cpp.o.d"
  "/root/repo/src/core/src/setpoint_study.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/setpoint_study.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/setpoint_study.cpp.o.d"
  "/root/repo/src/core/src/sku_analysis.cpp" "src/core/CMakeFiles/rainshine_core.dir/src/sku_analysis.cpp.o" "gcc" "src/core/CMakeFiles/rainshine_core.dir/src/sku_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rainshine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rainshine_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/rainshine_table.dir/DependInfo.cmake"
  "/root/repo/build/src/simdc/CMakeFiles/rainshine_simdc.dir/DependInfo.cmake"
  "/root/repo/build/src/cart/CMakeFiles/rainshine_cart.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/rainshine_tco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
