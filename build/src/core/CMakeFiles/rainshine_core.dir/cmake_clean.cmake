file(REMOVE_RECURSE
  "CMakeFiles/rainshine_core.dir/src/environment_analysis.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/environment_analysis.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/marginals.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/marginals.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/metrics.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/metrics.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/observations.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/observations.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/prediction.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/prediction.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/provisioning.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/provisioning.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/repair_analytics.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/repair_analytics.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/setpoint_study.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/setpoint_study.cpp.o.d"
  "CMakeFiles/rainshine_core.dir/src/sku_analysis.cpp.o"
  "CMakeFiles/rainshine_core.dir/src/sku_analysis.cpp.o.d"
  "librainshine_core.a"
  "librainshine_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
