file(REMOVE_RECURSE
  "librainshine_core.a"
)
