# Empty dependencies file for rainshine_core.
# This may be replaced when dependencies are built.
