file(REMOVE_RECURSE
  "CMakeFiles/rainshine_simdc.dir/src/environment.cpp.o"
  "CMakeFiles/rainshine_simdc.dir/src/environment.cpp.o.d"
  "CMakeFiles/rainshine_simdc.dir/src/hazard.cpp.o"
  "CMakeFiles/rainshine_simdc.dir/src/hazard.cpp.o.d"
  "CMakeFiles/rainshine_simdc.dir/src/ticket_io.cpp.o"
  "CMakeFiles/rainshine_simdc.dir/src/ticket_io.cpp.o.d"
  "CMakeFiles/rainshine_simdc.dir/src/tickets.cpp.o"
  "CMakeFiles/rainshine_simdc.dir/src/tickets.cpp.o.d"
  "CMakeFiles/rainshine_simdc.dir/src/topology.cpp.o"
  "CMakeFiles/rainshine_simdc.dir/src/topology.cpp.o.d"
  "CMakeFiles/rainshine_simdc.dir/src/types.cpp.o"
  "CMakeFiles/rainshine_simdc.dir/src/types.cpp.o.d"
  "librainshine_simdc.a"
  "librainshine_simdc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainshine_simdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
