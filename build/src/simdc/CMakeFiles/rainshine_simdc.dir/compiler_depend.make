# Empty compiler generated dependencies file for rainshine_simdc.
# This may be replaced when dependencies are built.
