
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdc/src/environment.cpp" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/environment.cpp.o" "gcc" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/environment.cpp.o.d"
  "/root/repo/src/simdc/src/hazard.cpp" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/hazard.cpp.o" "gcc" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/hazard.cpp.o.d"
  "/root/repo/src/simdc/src/ticket_io.cpp" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/ticket_io.cpp.o" "gcc" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/ticket_io.cpp.o.d"
  "/root/repo/src/simdc/src/tickets.cpp" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/tickets.cpp.o" "gcc" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/tickets.cpp.o.d"
  "/root/repo/src/simdc/src/topology.cpp" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/topology.cpp.o" "gcc" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/topology.cpp.o.d"
  "/root/repo/src/simdc/src/types.cpp" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/types.cpp.o" "gcc" "src/simdc/CMakeFiles/rainshine_simdc.dir/src/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rainshine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rainshine_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
