file(REMOVE_RECURSE
  "librainshine_simdc.a"
)
