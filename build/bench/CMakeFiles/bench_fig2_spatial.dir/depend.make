# Empty dependencies file for bench_fig2_spatial.
# This may be replaced when dependencies are built.
