file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_prediction.dir/bench_extension_prediction.cpp.o"
  "CMakeFiles/bench_extension_prediction.dir/bench_extension_prediction.cpp.o.d"
  "bench_extension_prediction"
  "bench_extension_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
