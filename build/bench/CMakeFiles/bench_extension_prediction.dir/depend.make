# Empty dependencies file for bench_extension_prediction.
# This may be replaced when dependencies are built.
