# Empty dependencies file for bench_extension_survival.
# This may be replaced when dependencies are built.
