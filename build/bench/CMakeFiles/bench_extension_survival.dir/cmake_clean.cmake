file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_survival.dir/bench_extension_survival.cpp.o"
  "CMakeFiles/bench_extension_survival.dir/bench_extension_survival.cpp.o.d"
  "bench_extension_survival"
  "bench_extension_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
