# Empty dependencies file for bench_table2_ticket_mix.
# This may be replaced when dependencies are built.
