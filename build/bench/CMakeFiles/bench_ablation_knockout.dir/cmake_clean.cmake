file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_knockout.dir/bench_ablation_knockout.cpp.o"
  "CMakeFiles/bench_ablation_knockout.dir/bench_ablation_knockout.cpp.o.d"
  "bench_ablation_knockout"
  "bench_ablation_knockout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_knockout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
