# Empty dependencies file for bench_ablation_knockout.
# This may be replaced when dependencies are built.
