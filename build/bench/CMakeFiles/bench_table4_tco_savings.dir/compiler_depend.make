# Empty compiler generated dependencies file for bench_table4_tco_savings.
# This may be replaced when dependencies are built.
