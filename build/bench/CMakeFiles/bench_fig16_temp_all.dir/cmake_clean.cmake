file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_temp_all.dir/bench_fig16_temp_all.cpp.o"
  "CMakeFiles/bench_fig16_temp_all.dir/bench_fig16_temp_all.cpp.o.d"
  "bench_fig16_temp_all"
  "bench_fig16_temp_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_temp_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
