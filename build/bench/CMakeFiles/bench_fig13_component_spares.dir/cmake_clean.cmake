file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_component_spares.dir/bench_fig13_component_spares.cpp.o"
  "CMakeFiles/bench_fig13_component_spares.dir/bench_fig13_component_spares.cpp.o.d"
  "bench_fig13_component_spares"
  "bench_fig13_component_spares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_component_spares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
