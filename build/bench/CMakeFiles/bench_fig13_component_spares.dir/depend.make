# Empty dependencies file for bench_fig13_component_spares.
# This may be replaced when dependencies are built.
