file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sku.dir/bench_fig7_sku.cpp.o"
  "CMakeFiles/bench_fig7_sku.dir/bench_fig7_sku.cpp.o.d"
  "bench_fig7_sku"
  "bench_fig7_sku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
