file(REMOVE_RECURSE
  "CMakeFiles/bench_q2_sku_tco.dir/bench_q2_sku_tco.cpp.o"
  "CMakeFiles/bench_q2_sku_tco.dir/bench_q2_sku_tco.cpp.o.d"
  "bench_q2_sku_tco"
  "bench_q2_sku_tco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q2_sku_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
