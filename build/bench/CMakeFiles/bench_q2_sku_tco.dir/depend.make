# Empty dependencies file for bench_q2_sku_tco.
# This may be replaced when dependencies are built.
