# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_q2_sku_tco.
