file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_setpoint.dir/bench_extension_setpoint.cpp.o"
  "CMakeFiles/bench_extension_setpoint.dir/bench_extension_setpoint.cpp.o.d"
  "bench_extension_setpoint"
  "bench_extension_setpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_setpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
