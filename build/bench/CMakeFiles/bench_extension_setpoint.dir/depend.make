# Empty dependencies file for bench_extension_setpoint.
# This may be replaced when dependencies are built.
