file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sku_mf.dir/bench_fig15_sku_mf.cpp.o"
  "CMakeFiles/bench_fig15_sku_mf.dir/bench_fig15_sku_mf.cpp.o.d"
  "bench_fig15_sku_mf"
  "bench_fig15_sku_mf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sku_mf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
