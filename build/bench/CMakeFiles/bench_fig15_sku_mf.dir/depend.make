# Empty dependencies file for bench_fig15_sku_mf.
# This may be replaced when dependencies are built.
