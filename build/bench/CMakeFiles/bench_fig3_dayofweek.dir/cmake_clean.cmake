file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_dayofweek.dir/bench_fig3_dayofweek.cpp.o"
  "CMakeFiles/bench_fig3_dayofweek.dir/bench_fig3_dayofweek.cpp.o.d"
  "bench_fig3_dayofweek"
  "bench_fig3_dayofweek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dayofweek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
