# Empty dependencies file for bench_fig3_dayofweek.
# This may be replaced when dependencies are built.
