# Empty dependencies file for bench_fig12_provisioning_hourly.
# This may be replaced when dependencies are built.
