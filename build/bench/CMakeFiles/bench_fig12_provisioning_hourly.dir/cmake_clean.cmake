file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_provisioning_hourly.dir/bench_fig12_provisioning_hourly.cpp.o"
  "CMakeFiles/bench_fig12_provisioning_hourly.dir/bench_fig12_provisioning_hourly.cpp.o.d"
  "bench_fig12_provisioning_hourly"
  "bench_fig12_provisioning_hourly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_provisioning_hourly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
