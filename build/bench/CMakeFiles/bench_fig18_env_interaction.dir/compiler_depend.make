# Empty compiler generated dependencies file for bench_fig18_env_interaction.
# This may be replaced when dependencies are built.
