# Empty dependencies file for bench_fig10_provisioning_daily.
# This may be replaced when dependencies are built.
