file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_provisioning_daily.dir/bench_fig10_provisioning_daily.cpp.o"
  "CMakeFiles/bench_fig10_provisioning_daily.dir/bench_fig10_provisioning_daily.cpp.o.d"
  "bench_fig10_provisioning_daily"
  "bench_fig10_provisioning_daily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_provisioning_daily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
