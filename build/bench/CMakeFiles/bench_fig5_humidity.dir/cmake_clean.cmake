file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_humidity.dir/bench_fig5_humidity.cpp.o"
  "CMakeFiles/bench_fig5_humidity.dir/bench_fig5_humidity.cpp.o.d"
  "bench_fig5_humidity"
  "bench_fig5_humidity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_humidity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
