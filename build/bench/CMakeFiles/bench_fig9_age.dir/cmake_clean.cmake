file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_age.dir/bench_fig9_age.cpp.o"
  "CMakeFiles/bench_fig9_age.dir/bench_fig9_age.cpp.o.d"
  "bench_fig9_age"
  "bench_fig9_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
