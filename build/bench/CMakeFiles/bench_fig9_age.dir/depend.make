# Empty dependencies file for bench_fig9_age.
# This may be replaced when dependencies are built.
