# Empty dependencies file for bench_fig4_month.
# This may be replaced when dependencies are built.
