file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_month.dir/bench_fig4_month.cpp.o"
  "CMakeFiles/bench_fig4_month.dir/bench_fig4_month.cpp.o.d"
  "bench_fig4_month"
  "bench_fig4_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
