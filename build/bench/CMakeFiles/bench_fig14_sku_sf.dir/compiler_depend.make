# Empty compiler generated dependencies file for bench_fig14_sku_sf.
# This may be replaced when dependencies are built.
