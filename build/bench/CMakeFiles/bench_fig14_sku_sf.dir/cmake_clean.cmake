file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sku_sf.dir/bench_fig14_sku_sf.cpp.o"
  "CMakeFiles/bench_fig14_sku_sf.dir/bench_fig14_sku_sf.cpp.o.d"
  "bench_fig14_sku_sf"
  "bench_fig14_sku_sf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sku_sf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
