# Empty compiler generated dependencies file for bench_ablation_cluster_count.
# This may be replaced when dependencies are built.
