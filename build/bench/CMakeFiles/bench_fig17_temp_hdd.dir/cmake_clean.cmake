file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_temp_hdd.dir/bench_fig17_temp_hdd.cpp.o"
  "CMakeFiles/bench_fig17_temp_hdd.dir/bench_fig17_temp_hdd.cpp.o.d"
  "bench_fig17_temp_hdd"
  "bench_fig17_temp_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_temp_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
