# Empty compiler generated dependencies file for bench_fig17_temp_hdd.
# This may be replaced when dependencies are built.
