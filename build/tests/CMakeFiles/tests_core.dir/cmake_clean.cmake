file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/test_metrics.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_metrics.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_observations.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_observations.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_provisioning.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_provisioning.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_repair_prediction.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_repair_prediction.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_setpoint.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_setpoint.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_sku_environment.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_sku_environment.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/test_world_shapes.cpp.o"
  "CMakeFiles/tests_core.dir/core/test_world_shapes.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
