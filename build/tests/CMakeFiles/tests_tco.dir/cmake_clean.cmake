file(REMOVE_RECURSE
  "CMakeFiles/tests_tco.dir/tco/test_cost_model.cpp.o"
  "CMakeFiles/tests_tco.dir/tco/test_cost_model.cpp.o.d"
  "tests_tco"
  "tests_tco.pdb"
  "tests_tco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
