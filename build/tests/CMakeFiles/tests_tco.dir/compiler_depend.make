# Empty compiler generated dependencies file for tests_tco.
# This may be replaced when dependencies are built.
