
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_bootstrap_correlation.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_bootstrap_correlation.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_bootstrap_correlation.cpp.o.d"
  "/root/repo/tests/stats/test_descriptive.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_descriptive.cpp.o.d"
  "/root/repo/tests/stats/test_distributions.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_distributions.cpp.o.d"
  "/root/repo/tests/stats/test_ecdf.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_ecdf.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_ecdf.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_survival.cpp" "tests/CMakeFiles/tests_stats.dir/stats/test_survival.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/stats/test_survival.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rainshine_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simdc/CMakeFiles/rainshine_simdc.dir/DependInfo.cmake"
  "/root/repo/build/src/cart/CMakeFiles/rainshine_cart.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/rainshine_table.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rainshine_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rainshine_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tco/CMakeFiles/rainshine_tco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
