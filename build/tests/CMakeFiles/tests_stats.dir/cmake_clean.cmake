file(REMOVE_RECURSE
  "CMakeFiles/tests_stats.dir/stats/test_bootstrap_correlation.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_bootstrap_correlation.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_distributions.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_distributions.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_ecdf.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_ecdf.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/tests_stats.dir/stats/test_survival.cpp.o"
  "CMakeFiles/tests_stats.dir/stats/test_survival.cpp.o.d"
  "tests_stats"
  "tests_stats.pdb"
  "tests_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
