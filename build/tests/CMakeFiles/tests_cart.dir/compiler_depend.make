# Empty compiler generated dependencies file for tests_cart.
# This may be replaced when dependencies are built.
