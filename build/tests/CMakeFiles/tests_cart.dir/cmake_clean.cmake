file(REMOVE_RECURSE
  "CMakeFiles/tests_cart.dir/cart/test_dataset.cpp.o"
  "CMakeFiles/tests_cart.dir/cart/test_dataset.cpp.o.d"
  "CMakeFiles/tests_cart.dir/cart/test_forest.cpp.o"
  "CMakeFiles/tests_cart.dir/cart/test_forest.cpp.o.d"
  "CMakeFiles/tests_cart.dir/cart/test_partial.cpp.o"
  "CMakeFiles/tests_cart.dir/cart/test_partial.cpp.o.d"
  "CMakeFiles/tests_cart.dir/cart/test_prune.cpp.o"
  "CMakeFiles/tests_cart.dir/cart/test_prune.cpp.o.d"
  "CMakeFiles/tests_cart.dir/cart/test_tree.cpp.o"
  "CMakeFiles/tests_cart.dir/cart/test_tree.cpp.o.d"
  "tests_cart"
  "tests_cart.pdb"
  "tests_cart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
