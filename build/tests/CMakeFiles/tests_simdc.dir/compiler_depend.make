# Empty compiler generated dependencies file for tests_simdc.
# This may be replaced when dependencies are built.
