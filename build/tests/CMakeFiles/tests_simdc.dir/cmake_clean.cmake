file(REMOVE_RECURSE
  "CMakeFiles/tests_simdc.dir/simdc/test_environment.cpp.o"
  "CMakeFiles/tests_simdc.dir/simdc/test_environment.cpp.o.d"
  "CMakeFiles/tests_simdc.dir/simdc/test_hazard.cpp.o"
  "CMakeFiles/tests_simdc.dir/simdc/test_hazard.cpp.o.d"
  "CMakeFiles/tests_simdc.dir/simdc/test_ticket_io.cpp.o"
  "CMakeFiles/tests_simdc.dir/simdc/test_ticket_io.cpp.o.d"
  "CMakeFiles/tests_simdc.dir/simdc/test_tickets.cpp.o"
  "CMakeFiles/tests_simdc.dir/simdc/test_tickets.cpp.o.d"
  "CMakeFiles/tests_simdc.dir/simdc/test_topology.cpp.o"
  "CMakeFiles/tests_simdc.dir/simdc/test_topology.cpp.o.d"
  "tests_simdc"
  "tests_simdc.pdb"
  "tests_simdc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_simdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
