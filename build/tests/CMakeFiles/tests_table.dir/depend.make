# Empty dependencies file for tests_table.
# This may be replaced when dependencies are built.
