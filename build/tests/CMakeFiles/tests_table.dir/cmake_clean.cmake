file(REMOVE_RECURSE
  "CMakeFiles/tests_table.dir/table/test_column.cpp.o"
  "CMakeFiles/tests_table.dir/table/test_column.cpp.o.d"
  "CMakeFiles/tests_table.dir/table/test_groupby_csv.cpp.o"
  "CMakeFiles/tests_table.dir/table/test_groupby_csv.cpp.o.d"
  "CMakeFiles/tests_table.dir/table/test_table.cpp.o"
  "CMakeFiles/tests_table.dir/table/test_table.cpp.o.d"
  "tests_table"
  "tests_table.pdb"
  "tests_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
