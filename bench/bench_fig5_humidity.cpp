// Fig. 5 — failure rate vs relative humidity on the day of failure.
// Paper shape: notable elevation at low-humidity operating points.
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 5 - failure rate by relative humidity");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by RH bin (%)",
                          marginals.by_humidity());
  return 0;
}
