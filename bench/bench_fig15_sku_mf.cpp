// Fig. 15 — SKU comparison under the multi-factor view: the effect of the
// SKU after normalizing DC, region, rated power, workload and commission
// year (lambda ~ SKU, N(DC), N(RatedPower), N(Workload), N(CommissionYear)).
//
// Paper shape: the S2/S4 average-rate gap shrinks from ~10x (SF) to ~4x
// (the true vendor-quality effect), and the within-SKU variation drops by
// up to ~50%.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/sku_analysis.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 15 - SKU reliability, multi-factor view");
  const bench::Context& ctx = bench::context();
  core::SkuAnalysisOptions opt;
  opt.day_stride = ctx.day_stride;
  const core::SkuStudy study = core::compare_skus(*ctx.metrics, *ctx.env, opt);

  std::printf("normalized average failure rate (lambda residualized on other factors)\n");
  std::printf("%-5s %10s %10s %10s\n", "SKU", "mean", "sd", "n");
  for (const auto& l : study.mf_lambda) {
    std::printf("%-5s %10.4f %10.4f %10zu\n", l.label.c_str(), l.mean, l.stddev,
                l.n);
  }
  std::printf("\nnormalized peak failure rate (per-rack peak mu residualized)\n");
  std::printf("%-5s %10s %10s %10s\n", "SKU", "mean", "sd", "n");
  for (const auto& l : study.mf_peak_mu) {
    std::printf("%-5s %10.4f %10.4f %10zu\n", l.label.c_str(), l.mean, l.stddev,
                l.n);
  }

  const auto find = [](const std::vector<cart::EffectLevel>& v, const char* sku)
      -> const cart::EffectLevel& {
    for (const auto& l : v) {
      if (l.label == sku) return l;
    }
    throw std::runtime_error("missing SKU");
  };
  const auto& s2 = find(study.mf_lambda, "S2");
  const auto& s4 = find(study.mf_lambda, "S4");
  std::printf("\nMF average-rate ratio S2/S4 = %.1fx (paper: ~4x; ground truth 4x)\n",
              s2.mean / s4.mean);

  // Variance-reduction check vs the SF spread (paper: up to ~50% drop).
  const auto sf_sd = [&](const char* sku) {
    for (const auto& m : study.sf) {
      if (m.sku == sku) return m.lambda_stddev;
    }
    return 0.0;
  };
  std::printf("S2 sd: SF %.4f -> MF %.4f (%.0f%% reduction)\n", sf_sd("S2"),
              s2.stddev, 100.0 * (1.0 - s2.stddev / sf_sd("S2")));
  return 0;
}
