// Table IV — relative savings in TCO by using MF instead of SF spare
// provisioning, for {daily, hourly} x {W1, W6} x {90, 95, 100}% SLAs.
//
// Paper values: 0.5-3.8% at 90%, 2.6-11.2% at 95%, 14.6-36.4% at 100%.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/provisioning.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Table IV - TCO savings of MF over SF");
  const bench::Context& ctx = bench::context();
  const tco::CostModel costs;

  struct Cell {
    core::Granularity g;
    simdc::WorkloadId wl;
    const char* label;
  };
  const Cell cells[] = {
      {core::Granularity::kDaily, simdc::WorkloadId::kW1, "Daily-W1"},
      {core::Granularity::kDaily, simdc::WorkloadId::kW6, "Daily-W6"},
      {core::Granularity::kHourly, simdc::WorkloadId::kW1, "Hourly-W1"},
      {core::Granularity::kHourly, simdc::WorkloadId::kW6, "Hourly-W6"},
  };

  // savings[sla][cell]
  double savings[3][4] = {};
  for (std::size_t c = 0; c < 4; ++c) {
    core::ProvisioningOptions opt;
    opt.granularity = cells[c].g;
    const auto study =
        core::provision_servers(*ctx.metrics, *ctx.env, cells[c].wl, opt);
    std::size_t total_servers = 0;
    for (const simdc::Rack* rack : ctx.fleet->racks_of(cells[c].wl)) {
      total_servers += static_cast<std::size_t>(rack->servers());
    }
    for (std::size_t s = 0; s < study.slas.size(); ++s) {
      tco::SparePlan mf;
      mf.servers = total_servers;
      mf.server_spare_fraction = study.mf.overprovision_pct[s] / 100.0;
      tco::SparePlan sf = mf;
      sf.server_spare_fraction = study.sf.overprovision_pct[s] / 100.0;
      savings[s][c] = tco::tco_savings_pct(costs, mf, sf);
    }
  }

  constexpr double kPaper[3][4] = {{0.52, 3.77, 5.00, 2.70},
                                   {2.60, 11.23, 7.23, 8.60},
                                   {14.60, 35.66, 22.23, 36.37}};
  std::printf("%-6s |", "SLA");
  for (const auto& cell : cells) std::printf(" %10s", cell.label);
  std::printf(" | paper row\n");
  const char* sla_names[] = {"90%", "95%", "100%"};
  for (std::size_t s = 0; s < 3; ++s) {
    std::printf("%-6s |", sla_names[s]);
    for (std::size_t c = 0; c < 4; ++c) std::printf(" %9.2f%%", savings[s][c]);
    std::printf(" | %.2f %.2f %.2f %.2f\n", kPaper[s][0], kPaper[s][1],
                kPaper[s][2], kPaper[s][3]);
  }
  return 0;
}
