// Fig. 6 — failure rate per workload. Paper shape: W2 (compute-intensive)
// highest; W3 (HPC) lowest; storage-data (W5, W6) below storage-compute
// (W4, W7).
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 6 - failure rate by workload");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by workload",
                          marginals.by_workload());
  return 0;
}
