// Fig. 14 — SKU comparison under the single-factor view: peak failure rate
// (µmax, CapEx driver) and average failure rate (λ, OpEx driver) per SKU,
// normalized to the respective maxima.
//
// Paper shape: S2's average rate ~10x S4's; S3's peak rate highest among
// storage SKUs; S4 best on both metrics.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/sku_analysis.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 14 - SKU reliability, single-factor view");
  const bench::Context& ctx = bench::context();
  core::SkuAnalysisOptions opt;
  opt.day_stride = ctx.day_stride;
  const core::SkuStudy study = core::compare_skus(*ctx.metrics, *ctx.env, opt);

  double peak_max = 0.0;
  double avg_max = 0.0;
  for (const auto& m : study.sf) {
    peak_max = std::max(peak_max, m.peak_mu);
    avg_max = std::max(avg_max, m.mean_lambda);
  }
  std::printf("%-5s %6s | %12s %10s | %12s %10s\n", "SKU", "racks", "peak(norm)",
              "sd", "avg(norm)", "sd");
  for (const auto& m : study.sf) {
    std::printf("%-5s %6zu | %12.3f %10.3f | %12.3f %10.4f\n", m.sku.c_str(),
                m.racks, peak_max > 0 ? m.peak_mu / peak_max : 0.0,
                m.peak_mu_stddev,
                avg_max > 0 ? m.mean_lambda / avg_max : 0.0, m.lambda_stddev);
  }

  const auto find = [&](const char* sku) -> const core::SkuMetrics& {
    for (const auto& m : study.sf) {
      if (m.sku == sku) return m;
    }
    throw std::runtime_error("missing SKU");
  };
  std::printf("\nSF average-rate ratio S2/S4 = %.1fx (paper: ~10x)\n",
              find("S2").mean_lambda / find("S4").mean_lambda);
  std::printf("SF peak-rate ratio S2/S4 = %.2fx (paper: ~1.18x)\n",
              find("S2").peak_mu / find("S4").peak_mu);
  return 0;
}
