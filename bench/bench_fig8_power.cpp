// Fig. 8 — failure rate vs rack power rating. Paper shape: racks rated
// above ~12 kW report higher failure rates.
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 8 - failure rate by rack power rating");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by power (kW)",
                          marginals.by_power());
  return 0;
}
