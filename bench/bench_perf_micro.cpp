// Google-benchmark micro-benchmarks of the library's hot paths: fleet
// simulation, metric extraction, CART fitting, ECDF quantiles. These guard
// against performance regressions; the experiment binaries above reproduce
// the paper's tables and figures.
#include <benchmark/benchmark.h>

#include "rainshine/cart/prune.hpp"
#include "rainshine/core/observations.hpp"
#include "rainshine/simdc/tickets.hpp"
#include "rainshine/stats/ecdf.hpp"

using namespace rainshine;

namespace {

const simdc::Fleet& small_fleet() {
  static const simdc::Fleet fleet = [] {
    simdc::FleetSpec spec = simdc::FleetSpec::test_default();
    spec.num_days = 120;
    return simdc::Fleet(spec);
  }();
  return fleet;
}

struct SimBundle {
  const simdc::Fleet& fleet = small_fleet();
  simdc::EnvironmentModel env{fleet, 1};
  simdc::HazardModel hazard{fleet, env};
  simdc::TicketLog log = simulate(fleet, env, hazard, {.seed = 1});
  core::FailureMetrics metrics{fleet, log};
};

const SimBundle& bundle() {
  static const SimBundle b;
  return b;
}

void BM_SimulateWindow(benchmark::State& state) {
  const auto& b = bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(b.fleet, b.env, b.hazard, {.seed = 7}));
  }
}
BENCHMARK(BM_SimulateWindow)->Unit(benchmark::kMillisecond);

void BM_EnvironmentDailyMean(benchmark::State& state) {
  const auto& b = bundle();
  const simdc::Rack& rack = b.fleet.racks().front();
  util::DayIndex day = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.env.daily_mean(rack, day));
    day = (day + 1) % b.fleet.spec().num_days;
  }
}
BENCHMARK(BM_EnvironmentDailyMean);

void BM_HazardRackDayRate(benchmark::State& state) {
  const auto& b = bundle();
  const simdc::Rack& rack = b.fleet.racks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.hazard.rack_day_rate(rack, 30, simdc::FaultType::kDiskFailure));
  }
}
BENCHMARK(BM_HazardRackDayRate);

void BM_MuSeriesDaily(benchmark::State& state) {
  const auto& b = bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.metrics.mu_series(
        0, core::DeviceKind::kServer, core::Granularity::kDaily, true));
  }
}
BENCHMARK(BM_MuSeriesDaily);

void BM_ObservationTable(benchmark::State& state) {
  const auto& b = bundle();
  for (auto _ : state) {
    core::ObservationOptions opt;
    opt.day_stride = 2;
    benchmark::DoNotOptimize(core::rack_day_table(b.metrics, b.env, opt));
  }
}
BENCHMARK(BM_ObservationTable)->Unit(benchmark::kMillisecond);

void BM_CartGrow(benchmark::State& state) {
  const auto& b = bundle();
  core::ObservationOptions opt;
  opt.day_stride = 2;
  const table::Table tbl = core::rack_day_table(b.metrics, b.env, opt);
  const cart::Dataset data(tbl, core::col::kLambdaHw,
                           core::static_rack_features(),
                           cart::Task::kRegression);
  cart::Config cfg;
  cfg.cp = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cart::grow(data, cfg));
  }
}
BENCHMARK(BM_CartGrow)->Unit(benchmark::kMillisecond);

void BM_EcdfQuantile(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& v : sample) v = rng.uniform();
  const stats::Ecdf ecdf(sample);
  double q = 0.0;
  for (auto _ : state) {
    q += 1e-9;
    if (q > 1.0) q = 0.0;
    benchmark::DoNotOptimize(ecdf.quantile(0.95));
  }
}
BENCHMARK(BM_EcdfQuantile)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
