// Google-benchmark micro-benchmarks of the library's hot paths: fleet
// simulation, metric extraction, CART fitting, ECDF quantiles. These guard
// against performance regressions; the experiment binaries above reproduce
// the paper's tables and figures.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

#include "rainshine/cart/forest.hpp"
#include "rainshine/cart/prune.hpp"
#include "rainshine/core/observations.hpp"
#include "rainshine/serve/service.hpp"
#include "rainshine/simdc/tickets.hpp"
#include "rainshine/stats/bootstrap.hpp"
#include "rainshine/stats/ecdf.hpp"
#include "rainshine/util/parallel.hpp"
#include "rainshine/util/rng.hpp"

using namespace rainshine;

namespace {

const simdc::Fleet& small_fleet() {
  static const simdc::Fleet fleet = [] {
    simdc::FleetSpec spec = simdc::FleetSpec::test_default();
    spec.num_days = 120;
    return simdc::Fleet(spec);
  }();
  return fleet;
}

struct SimBundle {
  const simdc::Fleet& fleet = small_fleet();
  simdc::EnvironmentModel env{fleet, 1};
  simdc::HazardModel hazard{fleet, env};
  simdc::TicketLog log = simulate(fleet, env, hazard, {.seed = 1});
  core::FailureMetrics metrics{fleet, log};
};

const SimBundle& bundle() {
  static const SimBundle b;
  return b;
}

void BM_SimulateWindow(benchmark::State& state) {
  const auto& b = bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(b.fleet, b.env, b.hazard, {.seed = 7}));
  }
}
BENCHMARK(BM_SimulateWindow)->Unit(benchmark::kMillisecond);

void BM_EnvironmentDailyMean(benchmark::State& state) {
  const auto& b = bundle();
  const simdc::Rack& rack = b.fleet.racks().front();
  util::DayIndex day = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.env.daily_mean(rack, day));
    day = (day + 1) % b.fleet.spec().num_days;
  }
}
BENCHMARK(BM_EnvironmentDailyMean);

void BM_HazardRackDayRate(benchmark::State& state) {
  const auto& b = bundle();
  const simdc::Rack& rack = b.fleet.racks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.hazard.rack_day_rate(rack, 30, simdc::FaultType::kDiskFailure));
  }
}
BENCHMARK(BM_HazardRackDayRate);

void BM_MuSeriesDaily(benchmark::State& state) {
  const auto& b = bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.metrics.mu_series(
        0, core::DeviceKind::kServer, core::Granularity::kDaily, true));
  }
}
BENCHMARK(BM_MuSeriesDaily);

void BM_ObservationTable(benchmark::State& state) {
  const auto& b = bundle();
  for (auto _ : state) {
    core::ObservationOptions opt;
    opt.day_stride = 2;
    benchmark::DoNotOptimize(core::rack_day_table(b.metrics, b.env, opt));
  }
}
BENCHMARK(BM_ObservationTable)->Unit(benchmark::kMillisecond);

// ---- Split-search engine sweeps -----------------------------------------
//
// Row-count sweep over synthetic mixed-type data, run through both engines:
// Args are (rows, engine) with engine 0 = presort (default), 1 = exhaustive
// (the seed per-node std::sort reference). The two grow bit-identical trees
// (tests/cart/test_grow_golden.cpp), so the gap is pure split-search cost.
// BENCH_cart.json records the committed baseline.

const cart::Dataset& synthetic_cart_data(std::size_t rows) {
  static std::map<std::size_t, std::pair<table::Table, cart::Dataset>> cache;
  auto it = cache.find(rows);
  if (it == cache.end()) {
    util::Rng rng(rows);
    std::vector<double> x1(rows);
    std::vector<double> x2(rows);
    std::vector<double> y(rows);
    table::Column sku(table::ColumnType::kNominal);
    const char* labels[] = {"a", "b", "c", "d", "e", "f"};
    for (std::size_t i = 0; i < rows; ++i) {
      x1[i] = std::floor(rng.uniform(0.0, 40.0)) / 4.0;  // tied values
      x2[i] = rng.uniform(-5.0, 5.0);
      const std::size_t s = static_cast<std::size_t>(rng.below(6));
      sku.push_nominal(labels[s]);
      y[i] = 2.0 * x1[i] + std::abs(x2[i]) + (s == 3 ? 5.0 : 0.0) +
             rng.uniform(-0.5, 0.5);
    }
    table::Table t;
    t.add_column("x1", table::Column::continuous(std::move(x1)));
    t.add_column("x2", table::Column::continuous(std::move(x2)));
    t.add_column("sku", std::move(sku));
    t.add_column("y", table::Column::continuous(std::move(y)));
    cart::Dataset data(t, "y", {"x1", "x2", "sku"}, cart::Task::kRegression);
    it = cache.emplace(rows, std::make_pair(std::move(t), std::move(data))).first;
  }
  return it->second.second;
}

cart::Config engine_config(std::int64_t engine_arg) {
  cart::Config cfg;
  cfg.cp = 0.0005;
  cfg.min_samples_split = 6;
  cfg.min_samples_leaf = 2;
  cfg.engine = engine_arg == 0 ? cart::SplitEngine::kPresort
                               : cart::SplitEngine::kExhaustive;
  return cfg;
}

void BM_GrowTree(benchmark::State& state) {
  const cart::Dataset& data =
      synthetic_cart_data(static_cast<std::size_t>(state.range(0)));
  const cart::Config cfg = engine_config(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cart::grow(data, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GrowTree)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_SplitSearch(benchmark::State& state) {
  // Root split only (max_depth 0 means the root never splits, so depth 1):
  // isolates one full exhaustive split search over n rows — presort setup +
  // one sweep versus per-feature std::sort + sweep.
  const cart::Dataset& data =
      synthetic_cart_data(static_cast<std::size_t>(state.range(0)));
  cart::Config cfg = engine_config(state.range(1));
  cfg.max_depth = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cart::grow(data, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SplitSearch)
    ->ArgsProduct({{1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_CartGrow(benchmark::State& state) {
  const auto& b = bundle();
  core::ObservationOptions opt;
  opt.day_stride = 2;
  const table::Table tbl = core::rack_day_table(b.metrics, b.env, opt);
  const cart::Dataset data(tbl, core::col::kLambdaHw,
                           core::static_rack_features(),
                           cart::Task::kRegression);
  cart::Config cfg;
  cfg.cp = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cart::grow(data, cfg));
  }
}
BENCHMARK(BM_CartGrow)->Unit(benchmark::kMillisecond);

// ---- Thread-count sweeps over the parallelized hot paths ----------------
//
// Arg(n) pins the pool to n threads for the benchmark body and restores
// automatic detection afterwards; outputs are bit-identical across the
// sweep (tests/integration/test_determinism.cpp), so these measure pure
// scheduling. BENCH_parallel.json records the committed baseline.

void thread_sweep(benchmark::internal::Benchmark* b) {
  b->Arg(1)->Arg(2);
  const auto hw = static_cast<long>(rainshine::util::hardware_threads());
  if (hw > 2) b->Arg(hw);
}

/// Pins the pool width for one benchmark run.
struct ThreadPin {
  explicit ThreadPin(std::int64_t n) {
    util::set_num_threads(static_cast<std::size_t>(n));
  }
  ~ThreadPin() { util::clear_thread_override(); }
};

const cart::Dataset& forest_dataset() {
  static const table::Table tbl = [] {
    const auto& b = bundle();
    core::ObservationOptions opt;
    opt.day_stride = 2;
    return core::rack_day_table(b.metrics, b.env, opt);
  }();
  static const cart::Dataset data(tbl, core::col::kLambdaHw,
                                  core::static_rack_features(),
                                  cart::Task::kRegression);
  return data;
}

void BM_FitForest(benchmark::State& state) {
  const ThreadPin pin(state.range(0));
  const cart::Dataset& data = forest_dataset();
  cart::ForestConfig cfg;
  cfg.num_trees = 24;
  cfg.tree.cp = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cart::grow_forest(data, cfg));
  }
}
BENCHMARK(BM_FitForest)->Apply(thread_sweep)->Unit(benchmark::kMillisecond);

void BM_Bootstrap(benchmark::State& state) {
  const ThreadPin pin(state.range(0));
  util::Rng data_rng(17);
  std::vector<double> sample(2000);
  for (auto& v : sample) v = data_rng.uniform(0.0, 10.0);
  for (auto _ : state) {
    util::Rng rng(29);
    benchmark::DoNotOptimize(stats::bootstrap_mean_ci(sample, rng, 1000));
  }
}
BENCHMARK(BM_Bootstrap)->Apply(thread_sweep)->Unit(benchmark::kMillisecond);

void BM_Simulate(benchmark::State& state) {
  const ThreadPin pin(state.range(0));
  const auto& b = bundle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(b.fleet, b.env, b.hazard, {.seed = 7}));
  }
}
BENCHMARK(BM_Simulate)->Apply(thread_sweep)->Unit(benchmark::kMillisecond);

// ---- Model artifact store + prediction service --------------------------
//
// Serialization cost scales with node count; scoring cost with batch size.
// BENCH_serve.json records the committed baseline (1-vCPU container).

const cart::Forest& serve_forest() {
  static const cart::Forest forest = [] {
    cart::ForestConfig cfg;
    cfg.num_trees = 24;
    cfg.tree.cp = 0.001;
    return cart::grow_forest(forest_dataset(), cfg);
  }();
  return forest;
}

void BM_SaveForest(benchmark::State& state) {
  const cart::Forest& forest = serve_forest();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::stringstream buf;
    serve::save_forest(forest, {.name = "bench"}, buf);
    bytes = buf.str().size();
    benchmark::DoNotOptimize(buf);
  }
  state.counters["artifact_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SaveForest)->Unit(benchmark::kMicrosecond);

void BM_LoadForest(benchmark::State& state) {
  const cart::Forest& forest = serve_forest();
  std::stringstream buf;
  serve::save_forest(forest, {.name = "bench"}, buf);
  const std::string bytes = buf.str();
  for (auto _ : state) {
    std::istringstream in(bytes, std::ios::binary);
    benchmark::DoNotOptimize(serve::load_forest(in));
  }
}
BENCHMARK(BM_LoadForest)->Unit(benchmark::kMicrosecond);

// All-numeric sibling of serve_forest(): no categorical splits, so every
// clean block of a batch predict takes the flat kernel's compare-only fast
// path. The serve forest (4 of 7 features nominal) exercises the general
// path instead.
const cart::Forest& numeric_forest() {
  static const cart::Forest forest = [] {
    static const table::Table tbl = [] {
      const auto& b = bundle();
      core::ObservationOptions opt;
      opt.day_stride = 2;
      return core::rack_day_table(b.metrics, b.env, opt);
    }();
    const cart::Dataset data(
        tbl, core::col::kLambdaHw,
        {core::col::kPowerKw, core::col::kAgeMonths, core::col::kCommissionYear},
        cart::Task::kRegression);
    cart::ForestConfig cfg;
    cfg.num_trees = 24;
    cfg.tree.cp = 0.001;
    return cart::grow_forest(data, cfg);
  }();
  return forest;
}

void BM_PredictBatch(benchmark::State& state) {
  // Library-level kernel comparison, no service in the way: 2048 rows
  // straight through Forest::predict with each scorer.
  //   0 = flat, 1 = walker on the serve forest (categorical-heavy);
  //   2 = flat, 3 = walker on the all-numeric forest (fast path).
  const bool numeric = state.range(0) >= 2;
  const cart::Forest& forest = numeric ? numeric_forest() : serve_forest();
  const auto scorer = state.range(0) % 2 == 0 ? cart::Scorer::kFlat
                                              : cart::Scorer::kWalker;
  const auto& b = bundle();
  core::ObservationOptions opt;
  opt.day_stride = 2;
  const table::Table all_rows = core::rack_day_table(b.metrics, b.env, opt);
  std::vector<std::size_t> indices(2048);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i % all_rows.num_rows();
  }
  const table::Table rows = all_rows.take(indices);
  const cart::Dataset data =
      serve::make_scoring_dataset(rows, forest.trees().front().features());
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data, scorer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_PredictBatch)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

// Classification sibling: the single-row path tallies per-class votes,
// which used to allocate a fresh vector per call (now thread_local scratch
// in Forest::predict(data, row)). Workload-from-rack-shape is a contrived
// target, but it makes the vote tally the hot data structure.
const cart::Forest& classification_forest() {
  static const cart::Forest forest = [] {
    const auto& b = bundle();
    core::ObservationOptions opt;
    opt.day_stride = 2;
    const table::Table tbl = core::rack_day_table(b.metrics, b.env, opt);
    const cart::Dataset data(
        tbl, core::col::kWorkload,
        {core::col::kDc, core::col::kPowerKw, core::col::kAgeMonths},
        cart::Task::kClassification);
    cart::ForestConfig cfg;
    cfg.num_trees = 24;
    cfg.tree.cp = 0.001;
    return cart::grow_forest(data, cfg);
  }();
  return forest;
}

void BM_PredictRow(benchmark::State& state) {
  // The single-row path the /score endpoint takes for batch-of-one traffic:
  // one row at a time through Forest::predict(data, row).
  //   0 = regression (serve forest), 1 = classification (vote tally).
  const cart::Forest& forest =
      state.range(0) == 1 ? classification_forest() : serve_forest();
  const auto& b = bundle();
  core::ObservationOptions opt;
  opt.day_stride = 2;
  const table::Table all_rows = core::rack_day_table(b.metrics, b.env, opt);
  std::vector<std::size_t> indices(2048);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i % all_rows.num_rows();
  }
  const table::Table rows = all_rows.take(indices);
  const cart::Dataset data =
      serve::make_scoring_dataset(rows, forest.trees().front().features());
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data, row));
    row = (row + 1) & 2047;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PredictRow)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

void BM_MakeScoringDataset(benchmark::State& state) {
  // The per-request re-encode (Table -> Dataset against the fitted schema)
  // that sits on the service path ahead of the scorer.
  const cart::Forest& forest = serve_forest();
  const auto& b = bundle();
  core::ObservationOptions opt;
  opt.day_stride = 2;
  const table::Table all_rows = core::rack_day_table(b.metrics, b.env, opt);
  std::vector<std::size_t> indices(2048);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i % all_rows.num_rows();
  }
  const table::Table rows = all_rows.take(indices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serve::make_scoring_dataset(rows, forest.trees().front().features()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_MakeScoringDataset)->Unit(benchmark::kMicrosecond);

void BM_ScoreBatch(benchmark::State& state) {
  // Batch-size sweep: rows per request through the micro-batching service.
  const cart::Forest& forest = serve_forest();
  serve::ModelMetadata meta;
  meta.name = "bench";
  meta.task = forest.task();
  meta.schema = forest.trees().front().features();
  serve::ModelArtifact art{
      meta, std::make_shared<const cart::Forest>(forest)};

  const auto& b = bundle();
  core::ObservationOptions opt;
  opt.day_stride = 2;
  const table::Table all_rows = core::rack_day_table(b.metrics, b.env, opt);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> indices(batch);
  for (std::size_t i = 0; i < batch; ++i) indices[i] = i % all_rows.num_rows();
  const table::Table rows = all_rows.take(indices);

  serve::PredictionService service(art);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.score(rows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ScoreBatch)->Arg(1)->Arg(16)->Arg(256)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_EcdfQuantile(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<double> sample(static_cast<std::size_t>(state.range(0)));
  for (auto& v : sample) v = rng.uniform();
  const stats::Ecdf ecdf(sample);
  double q = 0.0;
  for (auto _ : state) {
    q += 1e-9;
    if (q > 1.0) q = 0.0;
    benchmark::DoNotOptimize(ecdf.quantile(0.95));
  }
}
BENCHMARK(BM_EcdfQuantile)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
