// Extension — the cost/reliability set-point analysis the paper defers
// (§VI Q3: "a more extensive analysis (considering cost of environment
// control) is required to minimize overall TCO"). Sweeps DC1's cooling set
// point and reports expected hardware failures, repair opex, cooling opex
// and the total, marking the optimum.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/setpoint_study.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Extension - cooling set-point trade-off (DC1)");
  const bench::Context& ctx = bench::context();

  const tco::CostModel costs;
  const tco::CoolingModel cooling;
  core::SetpointOptions opt;
  opt.day_stride = std::max(3, ctx.day_stride);
  const auto study = core::setpoint_tradeoff(
      *ctx.fleet, *ctx.env, ctx.hazard->config(), costs, cooling, opt);

  std::printf("%8s %14s %12s %12s %12s\n", "dT (F)", "hw fail/yr",
              "repair $/yr", "cooling $/yr", "total $/yr");
  for (std::size_t i = 0; i < study.points.size(); ++i) {
    const auto& p = study.points[i];
    std::printf("%8.1f %14.1f %12.0f %12.0f %12.0f%s\n", p.offset_f,
                p.hw_failures_per_year, p.repair_cost_per_year,
                p.cooling_cost_per_year, p.total_cost_per_year,
                i == study.best ? "  <== optimum" : "");
  }
  std::printf("\n(costs in server-cost units; repair = failures x %g,\n"
              " cooling saves %.1f%%/F of its variable share when run warmer)\n",
              costs.repair_event_cost, 100.0 * cooling.saving_per_degree_f);

  // The single-factor (energy-only) decision for contrast.
  const auto& coldest = study.points.front();
  const auto& warmest = study.points.back();
  std::printf("\nenergy-only reasoning would pick dT=%+.0fF (cooling %0.f vs %0.f);\n"
              "the joint model picks dT=%+.0fF: DC1 already operates just under\n"
              "the 78F disk cliff (Fig. 18), so raising set points buys energy\n"
              "savings at a steeper reliability price — the paper's single-factor\n"
              "pitfall, now on the OpEx side.\n",
              warmest.offset_f, warmest.cooling_cost_per_year,
              coldest.cooling_cost_per_year,
              study.points[study.best].offset_f);
  return 0;
}
