// Live-pipeline throughput: the three hot paths of src/stream measured in
// one process — ticket-stream simulation throughput (tickets/s end to end
// through the bounded channel), ring-store write throughput (pushes/s into
// a two-tier series), and hot-swap latency (registry put, plus the full
// retrain-to-publish path). BENCH_stream.json records the committed
// baseline; RAINSHINE_DAYS scales the streamed horizon.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rainshine/serve/registry.hpp"
#include "rainshine/stream/retrain.hpp"
#include "rainshine/stream/source.hpp"
#include "rainshine/stream/store.hpp"

using namespace rainshine;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v ? std::strtol(v, nullptr, 10) : fallback;
}

}  // namespace

int main() {
  simdc::FleetSpec spec = simdc::FleetSpec::test_default();
  spec.num_days = static_cast<util::DayIndex>(env_long("RAINSHINE_DAYS", 120));
  const simdc::Fleet fleet(spec);
  const simdc::EnvironmentModel env(fleet, spec.seed);
  const simdc::HazardModel hazard(fleet, env);
  std::printf("{\n");
  std::printf("  \"fleet\": {\"racks\": %zu, \"days\": %d},\n",
              fleet.num_racks(), static_cast<int>(spec.num_days));

  // --- Ticket stream: full horizon through the channel -------------------
  {
    stream::SourceOptions opt;
    opt.seed = spec.seed;
    const auto t0 = std::chrono::steady_clock::now();
    stream::TicketStream stream(fleet, hazard, opt);
    std::size_t tickets = 0;
    std::size_t chunks = 0;
    while (auto chunk = stream.next()) {
      tickets += chunk->tickets.size();
      ++chunks;
    }
    const double s = seconds_since(t0);
    std::printf("  \"ticket_stream\": {\"tickets\": %zu, \"chunks\": %zu, "
                "\"seconds\": %.3f, \"tickets_per_s\": %.0f, "
                "\"days_per_s\": %.1f},\n",
                tickets, chunks, s, static_cast<double>(tickets) / s,
                static_cast<double>(chunks) / s);
  }

  // --- Ring store: sustained two-tier writes -----------------------------
  {
    stream::SeriesStore store;
    const stream::SeriesId id =
        store.add_series({"bench", {{1, 24 * 60}, {24, 120}}});
    const long pushes = env_long("RAINSHINE_STORE_PUSHES", 5'000'000);
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < pushes; ++i) {
      store.push(id, i / 4, static_cast<double>(i & 1023));
    }
    const double s = seconds_since(t0);
    std::printf("  \"ring_store\": {\"pushes\": %ld, \"tiers\": 2, "
                "\"seconds\": %.3f, \"pushes_per_s\": %.0f, "
                "\"memory_bytes\": %zu},\n",
                pushes, s, static_cast<double>(pushes) / s,
                store.memory_bytes());
  }

  // --- Hot swap: registry put latency and full retrain-to-publish --------
  {
    serve::ModelRegistry registry;
    stream::RetrainConfig cfg;
    cfg.interval_days = spec.num_days;  // manual retrain_now only
    cfg.window_days = 30;
    cfg.min_history_days = 10;
    cfg.forest.num_trees = 16;
    stream::RetrainController controller(fleet, env, registry, cfg);
    stream::TicketStream stream(fleet, hazard, {.seed = spec.seed});
    util::DayIndex last_day = 0;
    while (auto chunk = stream.next()) {
      last_day = chunk->day;
      controller.on_chunk(*chunk);
      if (chunk->day + 1 >= 30) break;
    }
    stream.stop();

    const auto t0 = std::chrono::steady_clock::now();
    const auto key = controller.retrain_now(last_day);
    const double retrain_s = seconds_since(t0);

    // Swap alone: re-publish the fitted artifact under fresh versions.
    const auto artifact = registry.get(key->name, key->version);
    constexpr int kSwaps = 1000;
    const auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < kSwaps; ++i) {
      serve::ModelArtifact copy = *artifact;
      copy.meta.version = static_cast<std::uint32_t>(i + 100);
      registry.put(std::move(copy));
    }
    const double swap_s = seconds_since(t1);
    std::printf("  \"hot_swap\": {\"retrain_to_publish_s\": %.3f, "
                "\"trees\": 16, \"swaps\": %d, \"swap_us\": %.2f, "
                "\"final_generation\": %llu}\n",
                retrain_s, kSwaps, swap_s / kSwaps * 1e6,
                static_cast<unsigned long long>(registry.swap_generation()));
  }
  std::printf("}\n");
  return 0;
}
