// Robustness sweep — how the Q1-Q3 answers degrade as ticket-log corruption
// rises from 0% to 20% under the recoverable ingest policies.
//
// For each corruption rate the clean simulated log is serialized, damaged by
// the seeded ingest::Corruptor (dropped / duplicated / clock-skewed /
// rack-swapped / truncated / blanked rows in equal measure), re-ingested
// under kQuarantine and kRepair, and the three studies re-run. Reported per
// cell: the IngestReport tallies, the worst per-rack spare-count delta at
// the 95% and 100% SLAs (Q1), whether the SKU reliability ranking changed
// (Q2), and the discovered DC1 safe-temperature split (Q3).
//
// Expected shape: at <=5% corruption the 95%-SLA spares move by at most a
// spare or two, the ranking is intact and the split moves well under a
// degree. The
// 100%-SLA sizing keys on the single worst observed period, so a rack that
// hops MF clusters can move by several spares — worst-period provisioning
// is inherently tail-sensitive to missing data. Past ~10% the quarantined
// mass crosses the studies' quality gate and warnings fire.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "rainshine/core/environment_analysis.hpp"
#include "rainshine/core/provisioning.hpp"
#include "rainshine/core/sku_analysis.hpp"
#include "rainshine/ingest/corruptor.hpp"
#include "rainshine/simdc/ticket_io.hpp"

using namespace rainshine;

namespace {

struct StudyAnswers {
  std::map<std::int32_t, long> spares95;   ///< per rack, 95% SLA
  std::map<std::int32_t, long> spares100;  ///< per rack, 100% SLA
  std::vector<std::string> sku_ranking;    ///< by SF mean lambda, descending
  double dc1_temp_split = 0.0;
  std::vector<std::string> warnings;
};

StudyAnswers run_studies(const core::FailureMetrics& metrics,
                         const simdc::EnvironmentModel& env,
                         simdc::WorkloadId workload, std::int32_t stride,
                         const ingest::IngestReport* report) {
  StudyAnswers out;

  core::ProvisioningOptions popt;
  popt.slas = {0.95, 1.0};
  popt.quality.report = report;
  const auto q1 = core::provision_servers(metrics, env, workload, popt);
  for (const core::Cluster& c : q1.clusters) {
    for (const std::int32_t id : c.rack_ids) {
      const auto servers = static_cast<double>(metrics.fleet().rack(id).servers());
      out.spares95[id] = static_cast<long>(std::ceil(c.requirement[0] * servers));
      out.spares100[id] = static_cast<long>(std::ceil(c.requirement[1] * servers));
    }
  }
  out.warnings = q1.warnings;

  core::SkuAnalysisOptions sopt;
  sopt.day_stride = stride;
  sopt.quality.report = report;
  const auto q2 = core::compare_skus(metrics, env, sopt);
  std::vector<const core::SkuMetrics*> by_rate;
  for (const auto& m : q2.sf) by_rate.push_back(&m);
  std::sort(by_rate.begin(), by_rate.end(), [](const auto* a, const auto* b) {
    return a->mean_lambda > b->mean_lambda;
  });
  for (const auto* m : by_rate) out.sku_ranking.push_back(m->sku);

  core::EnvironmentOptions eopt;
  eopt.day_stride = stride;
  eopt.quality.report = report;
  const auto q3 = core::analyze_environment(metrics, env, eopt);
  out.dc1_temp_split = q3.dc1_temp_split.value_or(
      std::numeric_limits<double>::quiet_NaN());
  return out;
}

long max_spare_delta(const std::map<std::int32_t, long>& clean,
                     const std::map<std::int32_t, long>& dirty) {
  long worst = 0;
  for (const auto& [rack, n] : clean) {
    const auto it = dirty.find(rack);
    if (it == dirty.end()) continue;
    worst = std::max(worst, std::labs(n - it->second));
  }
  return worst;
}

}  // namespace

int main() {
  bench::print_context_banner("Robustness - Q1-Q3 degradation vs corruption");
  const bench::Context& ctx = bench::context();

  simdc::WorkloadId workload = simdc::WorkloadId::kW1;
  std::size_t most = 0;
  for (const auto wl : simdc::kAllWorkloads) {
    const auto racks = ctx.fleet->racks_of(wl).size();
    if (racks > most) {
      most = racks;
      workload = wl;
    }
  }

  std::ostringstream buf;
  write_ticket_csv(*ctx.log, buf);
  const std::string clean_csv = buf.str();

  const StudyAnswers clean =
      run_studies(*ctx.metrics, *ctx.env, workload, ctx.day_stride, nullptr);
  std::string clean_rank;
  for (const auto& sku : clean.sku_ranking) {
    if (!clean_rank.empty()) clean_rank += '>';
    clean_rank += sku;
  }
  std::printf("clean baseline: Q2 ranking %s, Q3 DC1 split %.1fF\n\n",
              clean_rank.c_str(), clean.dc1_temp_split);
  std::printf("%-6s %-10s %11s %9s %9s %10s %8s %10s %7s\n", "rate", "policy",
              "quarantined", "repaired", "Q1 d95%", "Q1 d100%", "Q2 rank",
              "Q3 split", "warned");

  for (const double rate : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    const ingest::Corruptor corruptor(ingest::CorruptionSpec::uniform(rate, 42));
    const ingest::CorruptedCsv dirty = corruptor.corrupt_ticket_csv(clean_csv);
    for (const ingest::ErrorPolicy policy :
         {ingest::ErrorPolicy::kQuarantine, ingest::ErrorPolicy::kRepair}) {
      ingest::IngestReport report;
      std::istringstream in(dirty.text);
      const simdc::TicketLog log =
          simdc::read_ticket_csv(in, *ctx.fleet, {.policy = policy}, &report);
      const core::FailureMetrics metrics(*ctx.fleet, log);
      const StudyAnswers dirty_answers =
          run_studies(metrics, *ctx.env, workload, ctx.day_stride, &report);
      std::printf("%-6.2f %-10s %11zu %9zu %9ld %10ld %8s %9.1fF %7s\n", rate,
                  std::string(to_string(policy)).c_str(),
                  report.rows_quarantined(), report.rows_repaired(),
                  max_spare_delta(clean.spares95, dirty_answers.spares95),
                  max_spare_delta(clean.spares100, dirty_answers.spares100),
                  dirty_answers.sku_ranking == clean.sku_ranking ? "same"
                                                                 : "CHANGED",
                  dirty_answers.dc1_temp_split,
                  dirty_answers.warnings.empty() ? "-" : "yes");
    }
  }
  std::printf(
      "\n(spare deltas are per-rack worst case at the 95%% / 100%% SLAs;\n"
      " the 100%% SLA sizes for the single worst period and so is\n"
      " tail-sensitive to missing data; 'warned' = the studies' 5%%\n"
      " quarantine gate fired)\n");
  return 0;
}
