// Q2 TCO scenarios (paper §VI Q2 text): savings from procuring S4 instead of
// S2 as estimated by each approach, at price ratios 1.0x and 1.5x.
//
// Paper: priced equally, both approaches estimate >21% savings and differ by
// only ~3.9%; at 1.5x, SF still claims +2.3% savings while MF reveals a
// -3.2% LOSS — paying the premium is not cost-effective.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/sku_analysis.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Q2 - SKU procurement TCO scenarios");
  const bench::Context& ctx = bench::context();
  core::SkuAnalysisOptions opt;
  opt.day_stride = ctx.day_stride;
  const core::SkuStudy study = core::compare_skus(*ctx.metrics, *ctx.env, opt);
  const tco::CostModel costs;

  std::printf("%-22s %12s %12s\n", "scenario", "SF est.", "MF est.");
  for (const double ratio : {1.0, 1.5}) {
    const auto scenario =
        core::sku_tco_scenario(study, "S4", "S2", ratio, costs);
    std::printf("S4 at %.1fx S2's price  %11.2f%% %11.2f%%\n", ratio,
                scenario.sf_savings_pct, scenario.mf_savings_pct);
  }
  std::printf("\n(positive = choosing S4 saves money; paper: 1.0x -> both >21%%,\n"
              " 1.5x -> SF +2.3%% vs MF -3.2%%)\n");
  return 0;
}
