// Shared context for the experiment benches: one simulated study window per
// process, sized by RAINSHINE_DAYS / RAINSHINE_STRIDE environment variables
// so quick smoke runs and full reproductions use the same binaries.
#pragma once

#include <cstdlib>
#include <memory>
#include <span>
#include <string>

#include "rainshine/core/metrics.hpp"
#include "rainshine/simdc/tickets.hpp"
#include "rainshine/stats/histogram.hpp"

namespace rainshine::bench {

struct Context {
  simdc::FleetSpec spec;
  std::unique_ptr<simdc::Fleet> fleet;
  std::unique_ptr<simdc::EnvironmentModel> env;
  std::unique_ptr<simdc::HazardModel> hazard;
  std::unique_ptr<simdc::TicketLog> log;
  std::unique_ptr<core::FailureMetrics> metrics;
  std::int32_t day_stride = 1;  ///< suggested observation stride for analyses
};

/// Builds (once per process) the paper-scale fleet, simulates the window and
/// indexes metrics. Honors:
///   RAINSHINE_DAYS   — window length (default 913)
///   RAINSHINE_STRIDE — observation-table day stride (default 2)
///   RAINSHINE_SEED   — simulation seed (default 2017)
[[nodiscard]] const Context& context();

/// Prints a labelled mean/sd table normalized to its peak mean, the way the
/// paper plots Figs. 2-9 ("results normalized with respect to their maximum").
void print_normalized(const std::string& title,
                      std::span<const stats::BinnedRow> rows);

/// Prints the bench header (fleet size, ticket counts) once.
void print_context_banner(const std::string& experiment);

/// RAINSHINE_METRICS=path makes a bench binary drop a JSON metrics sidecar
/// (obs::registry() snapshot) at exit. No-op when the variable is unset.
void write_metrics_sidecar();

/// Process peak resident set (VmHWM from /proc/self/status) in bytes, so
/// memory ceilings land in BENCH JSON as numbers instead of prose. 0 on
/// platforms without procfs. Note this is a high-water mark: it never
/// decreases, so in a multi-phase bench measure the cheap phase first.
[[nodiscard]] std::size_t peak_rss_bytes();

namespace detail {
// Registered from the header, not common.cpp: a bench that never touches
// the shared Context would otherwise not pull common.o out of the static
// library, and the hook would silently never install. An inline variable
// is emitted in the bench's own (always-linked) translation unit.
inline const bool metrics_sidecar_registered = [] {
  std::atexit(&write_metrics_sidecar);
  return true;
}();
}  // namespace detail

}  // namespace rainshine::bench
