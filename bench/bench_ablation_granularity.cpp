// Ablation — temporal-multiplexing sweep beyond the paper's two points:
// provisioning granularity month -> week -> day -> hour. The paper compares
// daily vs hourly (Fig. 10 vs Fig. 12); sweeping further shows how much of
// the spare pool is pure temporal aliasing at coarse accounting periods.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/provisioning.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Ablation - provisioning granularity sweep");
  const bench::Context& ctx = bench::context();

  const std::pair<core::Granularity, const char*> grans[] = {
      {core::Granularity::kMonthly, "monthly"},
      {core::Granularity::kWeekly, "weekly"},
      {core::Granularity::kDaily, "daily"},
      {core::Granularity::kHourly, "hourly"},
  };
  std::printf("100%% availability SLA, over-provisioned capacity (%%)\n");
  std::printf("%-9s | %8s %8s %8s | %8s %8s %8s\n", "period", "W1-LB", "W1-MF",
              "W1-SF", "W6-LB", "W6-MF", "W6-SF");
  for (const auto& [g, name] : grans) {
    core::ProvisioningOptions opt;
    opt.granularity = g;
    opt.slas = {1.0};
    const auto w1 = core::provision_servers(*ctx.metrics, *ctx.env,
                                            simdc::WorkloadId::kW1, opt);
    const auto w6 = core::provision_servers(*ctx.metrics, *ctx.env,
                                            simdc::WorkloadId::kW6, opt);
    std::printf("%-9s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n", name,
                w1.lb.overprovision_pct[0], w1.mf.overprovision_pct[0],
                w1.sf.overprovision_pct[0], w6.lb.overprovision_pct[0],
                w6.mf.overprovision_pct[0], w6.sf.overprovision_pct[0]);
  }
  return 0;
}
