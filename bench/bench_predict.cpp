// Early-warning study bench: streams the seeded test fleet through the
// predict feature pipeline, fits the risk forest on the temporal-split
// train side, and reports precision/recall-at-k and lead-time distribution
// against the SF-style naive baseline (rank by trailing ticket count) as
// BENCH_predict.json on stdout.
//
//   RAINSHINE_DAYS   — window length (default 360; smoke 160)
//   RAINSHINE_SEED   — fleet + simulation seed (default 7, the test seed)
//   RAINSHINE_TREES  — forest size (default 48; smoke 12)
//
// --smoke additionally ASSERTS the acceptance bar — the classifier must
// beat the baseline on precision at the 5% alert budget and on median
// lead-time — and exits nonzero otherwise, so CI catches a regression in
// the model, the pipeline, or the planted signal.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common.hpp"
#include "rainshine/predict/eval.hpp"
#include "rainshine/predict/model.hpp"

using namespace rainshine;

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

[[nodiscard]] long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atol(v) : fallback;
}

void print_at(const char* name, const predict::RankedEval& eval) {
  std::printf("  \"%s\": [", name);
  for (std::size_t i = 0; i < eval.at.size(); ++i) {
    const auto& a = eval.at[i];
    std::printf("%s\n    {\"fraction\": %.4f, \"k\": %zu, \"hits\": %zu, "
                "\"precision\": %.6f, \"recall\": %.6f, "
                "\"median_lead_days\": %.4f}",
                i == 0 ? "" : ",", a.fraction, a.k, a.hits, a.precision,
                a.recall, a.median_lead_days);
  }
  std::printf("\n  ],\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int days = static_cast<int>(env_long("RAINSHINE_DAYS", smoke ? 240 : 360));
  const auto seed = static_cast<std::uint64_t>(env_long("RAINSHINE_SEED", 7));
  const auto trees =
      static_cast<std::size_t>(env_long("RAINSHINE_TREES", smoke ? 16 : 48));

  simdc::FleetSpec spec = simdc::FleetSpec::test_default();
  spec.num_days = days;
  spec.seed = seed;
  const simdc::Fleet fleet(spec);
  const simdc::EnvironmentModel env(fleet, spec.seed);
  const simdc::HazardModel hazard(fleet, env);

  predict::FeatureConfig config;
  config.warmup_days = std::min(90, days / 3);
  config.snapshot_stride = 5;
  config.horizon_days = 30;
  const util::DayIndex split_day =
      std::max<util::DayIndex>(config.warmup_days + config.horizon_days,
                               days - std::max(3 * config.horizon_days, 100));

  const auto t0 = Clock::now();
  const predict::FeatureSet set = build_features(fleet, env, hazard, config,
                                                 {.seed = spec.seed});
  const double pipeline_ms = ms_since(t0);

  const auto split = predict::temporal_split(set, split_day);
  if (split.train.empty() || split.test.empty()) {
    std::fprintf(stderr, "bench_predict: degenerate split (train=%zu test=%zu)\n",
                 split.train.size(), split.test.size());
    return 1;
  }

  cart::ForestConfig forest{.num_trees = trees, .seed = 11};
  const auto t1 = Clock::now();
  const auto model = predict::fit_risk_model(set, split.train, forest);
  const double fit_ms = ms_since(t1);

  const auto t2 = Clock::now();
  const auto scores = predict::score_rows(model, set, split.test);
  const double score_ms = ms_since(t2);
  const auto naive = predict::baseline_scores(set, split.test);

  predict::EvalOptions eopt;  // budgets 1/2/5/10%, primary 5%
  const auto report = predict::evaluate(set, split.test, scores, naive, eopt);

  const bool beats_precision =
      report.model_primary.precision > report.baseline_primary.precision;
  const bool beats_lead = report.model_primary.median_lead_days >
                          report.baseline_primary.median_lead_days;

  std::printf("{\n");
  std::printf("  \"bench\": \"predict_early_warning\",\n");
  std::printf("  \"days\": %d,\n  \"seed\": %llu,\n  \"servers\": %zu,\n",
              days, static_cast<unsigned long long>(seed), fleet.num_servers());
  std::printf("  \"warmup_days\": %d,\n  \"snapshot_stride\": %d,\n"
              "  \"horizon_days\": %d,\n  \"split_day\": %d,\n",
              config.warmup_days, config.snapshot_stride, config.horizon_days,
              split_day);
  std::printf("  \"rows\": %zu,\n  \"train_rows\": %zu,\n  \"test_rows\": %zu,\n",
              set.meta.size(), split.train.size(), split.test.size());
  std::printf("  \"test_positives\": %zu,\n  \"base_rate\": %.6f,\n",
              report.positives, report.base_rate);
  std::printf("  \"trees\": %zu,\n", trees);
  print_at("model_at_k", report.model);
  print_at("baseline_at_k", report.baseline);
  std::printf("  \"alert_budget\": %.4f,\n", report.primary_fraction);
  std::printf("  \"model_precision_at_budget\": %.6f,\n",
              report.model_primary.precision);
  std::printf("  \"baseline_precision_at_budget\": %.6f,\n",
              report.baseline_primary.precision);
  std::printf("  \"model_recall_at_budget\": %.6f,\n",
              report.model_primary.recall);
  std::printf("  \"baseline_recall_at_budget\": %.6f,\n",
              report.baseline_primary.recall);
  std::printf("  \"model_median_lead_days\": %.4f,\n",
              report.model_primary.median_lead_days);
  std::printf("  \"baseline_median_lead_days\": %.4f,\n",
              report.baseline_primary.median_lead_days);
  std::printf("  \"model_lead_deciles_days\": [");
  for (std::size_t i = 0; i < report.model_lead_deciles_days.size(); ++i)
    std::printf("%s%.4f", i == 0 ? "" : ", ", report.model_lead_deciles_days[i]);
  std::printf("],\n");
  std::printf("  \"oob_error\": %.6f,\n", model.forest.oob_error());
  std::printf("  \"beats_baseline_precision\": %s,\n",
              beats_precision ? "true" : "false");
  std::printf("  \"beats_baseline_lead\": %s,\n", beats_lead ? "true" : "false");
  std::printf("  \"pipeline_ms\": %.1f,\n  \"fit_ms\": %.1f,\n"
              "  \"score_ms\": %.1f,\n",
              pipeline_ms, fit_ms, score_ms);
  std::printf("  \"peak_rss_mb\": %.1f\n",
              static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0));
  std::printf("}\n");

  if (smoke && !(beats_precision && beats_lead)) {
    std::fprintf(stderr,
                 "bench_predict SMOKE FAILED: model p@k %.3f vs baseline %.3f, "
                 "median lead %.1fd vs %.1fd\n",
                 report.model_primary.precision,
                 report.baseline_primary.precision,
                 report.model_primary.median_lead_days,
                 report.baseline_primary.median_lead_days);
    return 1;
  }
  return 0;
}
