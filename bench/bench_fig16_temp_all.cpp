// Fig. 16 — temperature vs ALL failures (single-factor view). Paper shape:
// little variation in the bin means but high variation within each bin —
// temperature alone doesn't explain aggregate failures.
#include "common.hpp"
#include "rainshine/core/environment_analysis.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 16 - temperature vs all failures");
  const bench::Context& ctx = bench::context();
  core::EnvironmentOptions opt;
  opt.day_stride = ctx.day_stride;
  const auto study = core::analyze_environment(*ctx.metrics, *ctx.env, opt);
  bench::print_normalized("mean TOTAL failure rate per rack-day, by temperature (F)",
                          study.all_by_temp);
  return 0;
}
