// Fig. 9 — failure rate vs equipment age (months). Paper shape: new
// equipment fails more (the front edge of the bathtub curve); no wear-out
// tail visible within the window.
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 9 - failure rate by equipment age");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by age (months)",
                          marginals.by_age());
  return 0;
}
