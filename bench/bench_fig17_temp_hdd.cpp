// Fig. 17 — temperature vs HARD-DISK failures. Paper shape: a clear
// increasing trend of disk failure rate with operating temperature.
#include "common.hpp"
#include "rainshine/core/environment_analysis.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 17 - temperature vs hard-disk failures");
  const bench::Context& ctx = bench::context();
  core::EnvironmentOptions opt;
  opt.day_stride = ctx.day_stride;
  const auto study = core::analyze_environment(*ctx.metrics, *ctx.env, opt);
  bench::print_normalized("mean DISK failure rate per rack-day, by temperature (F)",
                          study.disk_by_temp);
  return 0;
}
