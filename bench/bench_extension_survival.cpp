// Extension — repair and survival analytics over the same RMA stream: MTTR
// by fault type and SKU (the paper's §II OpEx questions), rack downtime /
// MTBF, and Kaplan-Meier server survival per SKU (right-censoring handled,
// unlike naive AFR arithmetic).
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/repair_analytics.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Extension - repair & survival analytics");
  const bench::Context& ctx = bench::context();

  std::printf("MTTR by hardware fault type:\n");
  std::printf("  %-18s %8s %10s %10s %10s\n", "fault", "tickets", "mean(h)",
              "median(h)", "p95(h)");
  for (const auto& row : core::mttr_by_fault(*ctx.fleet, *ctx.log)) {
    std::printf("  %-18s %8zu %10.1f %10.1f %10.1f\n", row.label.c_str(),
                row.tickets, row.mttr_hours, row.median_hours, row.p95_hours);
  }

  std::printf("\nMTTR by SKU (vendor serviceability):\n");
  for (const auto& row : core::mttr_by_sku(*ctx.fleet, *ctx.log)) {
    std::printf("  %-4s %8zu tickets, mean %6.1f h\n", row.label.c_str(),
                row.tickets, row.mttr_hours);
  }

  std::printf("\nServer survival to first hardware failure, by SKU:\n");
  std::printf("  %-4s %8s %9s %12s %14s\n", "SKU", "servers", "failures",
              "median(d)", "rest.mean(d)");
  for (const auto& cohort :
       core::server_survival_by(*ctx.fleet, *ctx.log, core::Cohort::kSku)) {
    std::printf("  %-4s %8zu %9zu %12.0f %14.1f\n", cohort.label.c_str(),
                cohort.servers, cohort.failures, cohort.median_days,
                cohort.rmst_days);
  }

  // Fleet downtime headline.
  double worst = 0.0;
  double total_frac = 0.0;
  std::size_t racks = 0;
  for (const auto& r : core::rack_availability(*ctx.metrics, *ctx.log)) {
    worst = std::max(worst, r.server_downtime_fraction);
    total_frac += r.server_downtime_fraction;
    ++racks;
  }
  std::printf("\nfleet mean server downtime %.4f%% (worst rack %.3f%%)\n",
              100.0 * total_frac / static_cast<double>(racks), 100.0 * worst);
  return 0;
}
