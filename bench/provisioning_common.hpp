// Shared printer for the Q1 provisioning benches (Figs. 10-12).
#pragma once

#include <cstdio>

#include "rainshine/core/provisioning.hpp"

namespace rainshine::bench {

inline void print_provisioning(const core::ServerProvisioningStudy& study) {
  std::printf("workload %s: %zu clusters found by MF\n",
              std::string(simdc::to_string(study.workload)).c_str(),
              study.clusters.size());
  std::printf("%-8s %10s %10s %10s\n", "SLA", "LB%", "MF%", "SF%");
  for (std::size_t s = 0; s < study.slas.size(); ++s) {
    std::printf("%-8.0f %10.2f %10.2f %10.2f\n", study.slas[s] * 100.0,
                study.lb.overprovision_pct[s], study.mf.overprovision_pct[s],
                study.sf.overprovision_pct[s]);
  }
  std::printf("top cluster factors:");
  for (std::size_t i = 0; i < study.factors.size() && i < 4; ++i) {
    std::printf(" %s(%.2f)", study.factors[i].feature.c_str(),
                study.factors[i].importance);
  }
  std::printf("\n\n");
}

}  // namespace rainshine::bench
