// Fig. 4 — failure rate by month of year. Paper shape: elevated mean and
// spread in the second half of the year (seasonal/environmental coupling).
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 4 - failure rate by month of year");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by month",
                          marginals.by_month());
  return 0;
}
