// Table II — classification of failure tickets (% of true positives per DC).
// Paper reference values are printed alongside for direct comparison.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Table II - RMA ticket classification");
  const bench::Context& ctx = bench::context();

  // Paper's Table II, same row order as simdc::kAllFaultTypes.
  constexpr double kPaperDc1[] = {31.27, 13.95, 2.89, 10.53, 1.25, 18.42,
                                  5.29,  1.59,  2.84, 2.52,  9.41};
  constexpr double kPaperDc2[] = {38.84, 14.56, 3.05, 13.81, 0.19, 11.23,
                                  1.85,  3.83,  1.21, 0.65,  10.77};

  std::printf("%-10s %-22s | %8s %8s | %8s %8s\n", "Category", "Failure type",
              "DC1", "DC2", "paper1", "paper2");
  const auto rows = core::ticket_mix(*ctx.fleet, *ctx.log);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-10s %-22s | %8.2f %8.2f | %8.2f %8.2f\n",
                rows[i].category.c_str(), rows[i].fault.c_str(), rows[i].dc1_pct,
                rows[i].dc2_pct, kPaperDc1[i], kPaperDc2[i]);
  }
  return 0;
}
