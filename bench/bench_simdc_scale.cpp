// Fleet-scale sweep: tickets/s and peak RSS of simdc::simulate_streamed at
// 10k -> 100k -> 1M servers, printed as JSON (BENCH_simdc.json records the
// committed baseline). The point of the curve is the memory column: the
// streaming engine holds O(one day) of tickets resident, so peak RSS stays
// flat while the fleet grows 100x — a materialized TicketLog for the same
// window is the `materialized_*` estimate columns, which cross any sane
// bound long before 1M servers at the paper's 913-day horizon.
//
// Scale points grow paper_default() in BOTH row dimensions (num_rows and
// racks_per_row scale by sqrt(servers factor)), so a rack-row grows with the
// fleet; the headroom demo exploits that: a cooling outage striking one DC1
// rack-row at the 1M point downs thousands of servers in one burst — the
// scenario class the paper's 600-rack fleet could not express.
//
//   bench_simdc_scale             # full 10k/100k/1M curve + headroom demo
//   bench_simdc_scale --smoke     # one 100k point, assert RSS bound + tickets
//
// Knobs: RAINSHINE_SCALE_DAYS (window per point, default 32; smoke 10),
// RAINSHINE_RSS_BOUND_MB (RSS ceiling, default 256 for the full curve's 1M
// point, 32 for the 100k smoke). Both defaults sit BELOW the materialized
// full-window estimate at their scale — a design holding the fleet's
// tickets resident could not pass them — and ~16x above observed peak.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

#include "common.hpp"
#include "rainshine/simdc/tickets.hpp"

using namespace rainshine;

namespace {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtol(v, nullptr, 10) : fallback;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Counts what flows through the sink without retaining any of it — the
/// bench's consumer IS the O(1) baseline the RSS column measures against.
struct CountingSink final : simdc::TicketSink {
  std::size_t tickets = 0;
  bool on_day(util::DayIndex /*day*/,
              std::span<const simdc::Ticket> chunk) override {
    tickets += chunk.size();
    return true;
  }
};

/// paper_default() with both row dimensions scaled by sqrt(factor), keeping
/// the DC mix, SKU assignment and climate exactly the paper's — only bigger.
simdc::FleetSpec scaled_spec(double factor, util::DayIndex days) {
  simdc::FleetSpec spec = simdc::FleetSpec::paper_default();
  const double side = std::sqrt(factor);
  for (auto& dc : spec.datacenters) {
    dc.num_rows =
        static_cast<int>(std::max(1L, std::lround(dc.num_rows * side)));
    dc.racks_per_row =
        static_cast<int>(std::max(1L, std::lround(dc.racks_per_row * side)));
  }
  spec.num_days = days;
  return spec;
}

struct PointResult {
  std::size_t servers = 0;
  std::size_t racks = 0;
  simdc::StreamStats stats;
  double seconds = 0.0;
  std::size_t rss_bytes = 0;
};

PointResult run_point(const simdc::FleetSpec& spec,
                      simdc::SimulationOptions opts = {}) {
  const simdc::Fleet fleet(spec);
  const simdc::EnvironmentModel env(fleet, spec.seed);
  const simdc::HazardModel hazard(fleet, env);
  CountingSink sink;
  const auto t0 = std::chrono::steady_clock::now();
  PointResult r;
  r.stats = simulate_streamed(fleet, hazard, sink, std::move(opts));
  r.seconds = seconds_since(t0);
  r.servers = fleet.num_servers();
  r.racks = fleet.num_racks();
  r.rss_bytes = bench::peak_rss_bytes();
  return r;
}

void print_point(const char* label, long target, const PointResult& r,
                 util::DayIndex days, bool trailing_comma) {
  // Residency, measured two ways: what the engine actually held
  // (StreamStats, exact) and what the materialized alternative would hold —
  // for this window and extrapolated to the paper's full 913-day horizon.
  const double per_day =
      static_cast<double>(r.stats.total_tickets) / static_cast<double>(days);
  const auto full_window_est =
      static_cast<std::size_t>(per_day * 913.0) * sizeof(simdc::Ticket);
  std::printf(
      "    {\"point\": \"%s\", \"target_servers\": %ld, \"servers\": %zu, "
      "\"racks\": %zu, \"days\": %d,\n"
      "     \"tickets\": %zu, \"bursts\": %d, \"seconds\": %.3f, "
      "\"tickets_per_s\": %.0f, \"rack_days_per_s\": %.0f,\n"
      "     \"peak_resident_tickets\": %zu, \"peak_chunk_tickets\": %zu, "
      "\"resident_ticket_bytes\": %zu,\n"
      "     \"materialized_window_bytes\": %zu, "
      "\"materialized_913d_bytes_est\": %zu, \"peak_rss_bytes\": %zu}%s\n",
      label, target, r.servers, r.racks, static_cast<int>(days),
      r.stats.total_tickets, r.stats.bursts, r.seconds,
      static_cast<double>(r.stats.total_tickets) / r.seconds,
      static_cast<double>(r.racks) * days / r.seconds,
      r.stats.peak_resident_tickets, r.stats.peak_chunk_tickets,
      r.stats.peak_resident_tickets * sizeof(simdc::Ticket),
      r.stats.total_tickets * sizeof(simdc::Ticket), full_window_est,
      r.rss_bytes, trailing_comma ? "," : "");
}

/// servers-per-fleet of the unscaled paper spec, to turn a server target
/// into a row-scaling factor. Built once; 612 racks, negligible cost.
double paper_servers() {
  const simdc::Fleet probe(simdc::FleetSpec::paper_default());
  return static_cast<double>(probe.num_servers());
}

int run_smoke() {
  const auto days =
      static_cast<util::DayIndex>(env_long("RAINSHINE_SCALE_DAYS", 10));
  const long bound_mb = env_long("RAINSHINE_RSS_BOUND_MB", 32);
  const double factor = 100'000.0 / paper_servers();
  const PointResult r = run_point(scaled_spec(factor, days));
  std::printf("scale smoke: %zu servers / %zu racks, %d days -> %zu tickets, "
              "peak RSS %.1f MiB (bound %ld MiB), peak resident %zu tickets\n",
              r.servers, r.racks, static_cast<int>(days),
              r.stats.total_tickets,
              static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0), bound_mb,
              r.stats.peak_resident_tickets);
  if (r.stats.total_tickets == 0) {
    std::fprintf(stderr, "scale smoke FAILED: no tickets generated\n");
    return 1;
  }
  if (r.rss_bytes == 0) {
    std::fprintf(stderr, "scale smoke FAILED: peak_rss_bytes unavailable\n");
    return 1;
  }
  if (r.rss_bytes > static_cast<std::size_t>(bound_mb) * 1024 * 1024) {
    std::fprintf(stderr, "scale smoke FAILED: peak RSS %zu bytes > %ld MiB\n",
                 r.rss_bytes, bound_mb);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  const auto days =
      static_cast<util::DayIndex>(env_long("RAINSHINE_SCALE_DAYS", 32));
  const double base = paper_servers();

  std::printf("{\n  \"bench\": \"simdc_scale\", \"days_per_point\": %d, "
              "\"ticket_bytes\": %zu,\n",
              static_cast<int>(days), sizeof(simdc::Ticket));
  std::printf("  \"points\": [\n");

  // Ascending order on purpose: VmHWM is a high-water mark, so each point's
  // RSS reading is dominated by the largest fleet seen so far — its own.
  const struct { const char* label; long target; } kPoints[] = {
      {"10k", 10'000}, {"100k", 100'000}, {"1M", 1'000'000}};
  simdc::FleetSpec last_spec;
  std::size_t last_rss = 0;
  for (std::size_t i = 0; i < std::size(kPoints); ++i) {
    const auto& p = kPoints[i];
    simdc::FleetSpec spec =
        scaled_spec(static_cast<double>(p.target) / base, days);
    const PointResult r = run_point(spec);
    print_point(p.label, p.target, r, days, i + 1 < std::size(kPoints));
    last_spec = spec;
    last_rss = r.rss_bytes;
  }
  std::printf("  ],\n");

  // The headline claim as a checkable predicate: the 1M point's peak RSS
  // stays under a bound that the materialized design's full-window footprint
  // (~400 MB of tickets alone, see materialized_913d_bytes_est) exceeds.
  const long bound_mb = env_long("RAINSHINE_RSS_BOUND_MB", 256);
  std::printf("  \"rss_bound_mb\": %ld, \"rss_bound_holds\": %s,\n", bound_mb,
              last_rss <= static_cast<std::size_t>(bound_mb) * 1024 * 1024
                  ? "true"
                  : "false");

  // Headroom demo: the same 1M-server fleet, short window, with one injected
  // cooling outage downing a whole DC1 rack-row — run organically first to
  // report the injected delta. Both runs fit in memory the curve above
  // already bounded.
  {
    const auto demo_days = static_cast<util::DayIndex>(
        env_long("RAINSHINE_SCALE_DEMO_DAYS", 3));
    simdc::FleetSpec spec = last_spec;
    spec.num_days = demo_days;
    const PointResult organic = run_point(spec);

    simdc::InjectedOutage outage;
    outage.dc = simdc::DataCenterId::kDC1;
    outage.row = 0;
    outage.day = 1;
    outage.fraction = 1.0;
    outage.fault = simdc::FaultType::kPowerFailure;
    simdc::SimulationOptions opts;
    opts.outages = {outage};
    const PointResult hit = run_point(spec, std::move(opts));

    const std::size_t injected = hit.stats.total_tickets >
                                         organic.stats.total_tickets
                                     ? hit.stats.total_tickets -
                                           organic.stats.total_tickets
                                     : 0;
    std::printf(
        "  \"headroom_demo\": {\"scenario\": \"cooling outage, DC1 row 0, "
        "full rack-row\", \"servers\": %zu, \"days\": %d,\n"
        "    \"organic_tickets\": %zu, \"with_outage_tickets\": %zu, "
        "\"injected_tickets\": %zu,\n"
        "    \"bursts\": %d, \"peak_chunk_tickets\": %zu, "
        "\"peak_resident_tickets\": %zu, \"seconds\": %.3f}\n",
        hit.servers, static_cast<int>(demo_days), organic.stats.total_tickets,
        hit.stats.total_tickets, injected, hit.stats.bursts,
        hit.stats.peak_chunk_tickets, hit.stats.peak_resident_tickets,
        hit.seconds);
  }
  std::printf("}\n");
  return 0;
}
