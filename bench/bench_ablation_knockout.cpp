// Ablation — ground-truth factor knockout. Re-simulates the fleet with one
// planted effect disabled at a time and reports how the corresponding
// single-factor marginal flattens. This validates that each marginal in
// Figs. 3-9/17 is driven by its intended mechanism and not an artifact of
// the generator's other machinery.
#include <cstdio>

#include "rainshine/core/marginals.hpp"
#include "rainshine/simdc/tickets.hpp"
#include "rainshine/stats/descriptive.hpp"

using namespace rainshine;

namespace {

/// Peak-to-trough ratio of the non-empty group means of a marginal.
double contrast(const std::vector<stats::BinnedRow>& rows) {
  double lo = 1e300;
  double hi = 0.0;
  for (const auto& r : rows) {
    if (r.count < 200) continue;  // skip sparsely populated groups
    lo = std::min(lo, r.mean);
    hi = std::max(hi, r.mean);
  }
  return lo > 0.0 ? hi / lo : 0.0;
}

struct Variant {
  const char* name;
  simdc::HazardConfig config;
  const char* marginal;  // which marginal should flatten
};

}  // namespace

int main() {
  simdc::FleetSpec spec = simdc::FleetSpec::paper_default();
  const char* days_env = std::getenv("RAINSHINE_DAYS");
  spec.num_days = days_env ? std::atoi(days_env) : 365;
  const simdc::Fleet fleet(spec);
  const simdc::EnvironmentModel env(fleet, spec.seed);

  simdc::HazardConfig baseline;

  simdc::HazardConfig no_weekday = baseline;
  no_weekday.weekday_hw = 1.0;
  no_weekday.weekday_sw = 1.0;

  simdc::HazardConfig no_season = baseline;
  no_season.month_mult.fill(1.0);

  simdc::HazardConfig no_sku = baseline;
  no_sku.sku_hw.fill(1.0);
  no_sku.sku_disk.fill(1.0);

  simdc::HazardConfig no_power = baseline;
  no_power.power_slope_per_kw = 0.0;

  simdc::HazardConfig no_env = baseline;
  no_env.env_sensitive = {false, false};
  no_env.disk_temp_slope_per_f = 0.0;

  const Variant variants[] = {
      {"baseline", baseline, "-"},
      {"no weekday effect", no_weekday, "Fig. 3 (weekday)"},
      {"no seasonality", no_season, "Fig. 4 (month)"},
      {"no SKU effect", no_sku, "Fig. 7 (SKU)"},
      {"no power effect", no_power, "Fig. 8 (power)"},
      {"no environment", no_env, "Figs. 5/17 (RH, temp-vs-disk)"},
  };

  std::printf("### Ablation - ground-truth factor knockout (%d days)\n\n",
              spec.num_days);
  std::printf("%-20s | %8s %8s %8s %8s %8s | %s\n", "variant", "weekday",
              "month", "sku", "power", "rh", "expected flattening");
  for (const Variant& v : variants) {
    const simdc::HazardModel hazard(fleet, env, v.config);
    const simdc::TicketLog log = simulate(fleet, env, hazard, {.seed = spec.seed});
    const core::FailureMetrics metrics(fleet, log);
    const core::Marginals marginals(metrics, env, /*day_stride=*/2);
    std::printf("%-20s | %8.2f %8.2f %8.2f %8.2f %8.2f | %s\n", v.name,
                contrast(marginals.by_weekday()), contrast(marginals.by_month()),
                contrast(marginals.by_sku()), contrast(marginals.by_power()),
                contrast(marginals.by_humidity()), v.marginal);
  }
  std::printf("\n(each cell = max/min group-mean ratio of that marginal; the\n"
              " knocked-out row should be markedly flatter in its own column)\n");
  return 0;
}
