// Fig. 10 — over-provisioning requirement (% of capacity) determined by the
// LB / MF / SF approaches at 90/95/100% availability SLAs, daily
// granularity, for W1 (compute) and W6 (storage).
//
// Paper shape: MF well below SF (less than half at the 100% SLA) and close
// to the clairvoyant LB for both workloads.
#include "common.hpp"
#include "provisioning_common.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 10 - server spare provisioning (daily)");
  const bench::Context& ctx = bench::context();
  core::ProvisioningOptions opt;
  opt.granularity = core::Granularity::kDaily;
  for (const auto wl : {simdc::WorkloadId::kW1, simdc::WorkloadId::kW6}) {
    bench::print_provisioning(
        core::provision_servers(*ctx.metrics, *ctx.env, wl, opt));
  }
  return 0;
}
