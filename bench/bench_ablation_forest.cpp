// Ablation — single CART tree vs bagged forest for the MF framework's
// quantitative estimates: out-of-bag/holdout error of the λ model and the
// stability of the temperature partial-dependence curve (the Q3 estimate).
#include <cstdio>

#include "common.hpp"
#include "rainshine/cart/forest.hpp"
#include "rainshine/cart/prune.hpp"
#include "rainshine/core/observations.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Ablation - single tree vs bagged forest");
  const bench::Context& ctx = bench::context();

  core::ObservationOptions obs;
  obs.day_stride = std::max(4, ctx.day_stride * 2);
  obs.include_mu = false;
  const table::Table tbl = core::rack_day_table(*ctx.metrics, *ctx.env, obs);
  const std::vector<std::string> features = {
      core::col::kDc,      core::col::kSku,      core::col::kWorkload,
      core::col::kPowerKw, core::col::kAgeMonths, core::col::kTempF,
      core::col::kRh};
  const cart::Dataset data(tbl, core::col::kLambdaDisk, features,
                           cart::Task::kRegression);
  std::printf("observations: %zu rack-days\n\n", data.num_rows());

  // Chronological-ish holdout: every 5th row.
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> test_rows;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    (r % 5 == 0 ? test_rows : train_rows).push_back(r);
  }
  const cart::Dataset train = data.subset(train_rows);
  const cart::Dataset test = data.subset(test_rows);

  const auto mse = [&](auto&& model) {
    double err = 0.0;
    for (std::size_t r = 0; r < test.num_rows(); ++r) {
      const double d = test.y(r) - model.predict(test, r);
      err += d * d;
    }
    return err / static_cast<double>(test.num_rows());
  };

  cart::Config tree_cfg{/*min_samples_split=*/200, /*min_samples_leaf=*/80,
                        /*max_depth=*/8, /*cp=*/0.0005};
  const cart::Tree tree = cart::grow(train, tree_cfg);
  std::printf("%-24s %10s %10s %8s\n", "model", "test MSE", "OOB", "leaves");
  std::printf("%-24s %10.5f %10s %8zu\n", "single tree", mse(tree), "-",
              tree.num_leaves());

  for (const std::size_t trees : {5UL, 15UL, 40UL}) {
    cart::ForestConfig fcfg;
    fcfg.num_trees = trees;
    fcfg.tree = tree_cfg;
    fcfg.features_per_tree = 4;
    const cart::Forest forest = grow_forest(train, fcfg);
    std::printf("forest (%2zu trees)       %10.5f %10.5f %8s\n", trees,
                mse(forest), forest.oob_error(), "-");
  }

  std::printf("\ntemperature partial dependence (disk lambda), tree vs forest:\n");
  cart::ForestConfig fcfg;
  fcfg.num_trees = 25;
  fcfg.tree = tree_cfg;
  const cart::Forest forest = grow_forest(train, fcfg);
  const auto pd_tree = cart::partial_dependence(tree, train, core::col::kTempF, 8);
  const auto pd_forest = forest.partial_dependence(train, core::col::kTempF, 8);
  std::printf("%8s %12s %12s\n", "T (F)", "tree", "forest");
  for (std::size_t i = 0; i < pd_tree.size() && i < pd_forest.size(); ++i) {
    std::printf("%8.1f %12.5f %12.5f\n", pd_tree[i].x, pd_tree[i].yhat,
                pd_forest[i].yhat);
  }
  return 0;
}
