// Network serving under open-loop load: boots an in-process HttpServer on an
// ephemeral port, then sweeps offered rps with the loadgen client (fixed due
// times, latency measured from the due time — coordinated-omission honest)
// and reports p50/p99/p999 and the shed rate at each point. The sweep is the
// rps_sweep section of BENCH_serve.json; run on the 1-vCPU container it shows
// where batching absorbs load and where the 503 shedding path takes over.
//
//   RAINSHINE_NET_RPS       max offered rps of the sweep      (default 3200)
//   RAINSHINE_NET_DURATION  ms per sweep point                (default 2000)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "rainshine/cart/forest.hpp"
#include "rainshine/net/loadgen.hpp"
#include "rainshine/net/server.hpp"
#include "rainshine/serve/service.hpp"
#include "rainshine/util/rng.hpp"

using namespace rainshine;

namespace {

serve::ModelArtifact regression_artifact() {
  util::Rng rng(2017);
  std::vector<double> x(600);
  std::vector<double> y(600);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.uniform(0.0, 40.0);                       // inlet temp, say
    y[i] = 0.05 * x[i] + rng.uniform(0.0, 0.2);          // failure-rate-ish
  }
  table::Table t;
  t.add_column("x", table::Column::continuous(std::move(x)));
  t.add_column("y", table::Column::continuous(std::move(y)));
  const cart::Dataset data(t, "y", {"x"}, cart::Task::kRegression);
  cart::ForestConfig cfg;
  cfg.num_trees = 24;
  cfg.seed = 2017;
  cart::Forest forest = cart::grow_forest(data, cfg);
  serve::ModelMetadata meta;
  meta.name = "bench";
  meta.version = 1;
  meta.task = forest.task();
  meta.schema = forest.trees().front().features();
  return serve::ModelArtifact{
      std::move(meta), std::make_shared<const cart::Forest>(std::move(forest))};
}

long long env_or(const char* name, long long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::atoll(raw);
}

}  // namespace

int main() {
  const auto max_rps = static_cast<double>(env_or("RAINSHINE_NET_RPS", 3200));
  const auto duration =
      std::chrono::milliseconds(env_or("RAINSHINE_NET_DURATION", 2000));

  auto service = std::make_shared<serve::PredictionService>(regression_artifact());
  net::ServerConfig cfg;
  // Small-box geometry: 2 workers + 4 queue slots caps in-flight capacity at
  // 6, while the client runs 8 threads — so past the knee the acceptor's
  // 503 shedding path is actually exercised instead of latency absorbing
  // everything invisibly.
  cfg.num_workers = 2;
  cfg.max_pending_connections = 4;
  net::HttpServer server(service, nullptr, cfg);

  // 8 rows per request: well under max_batch_rows, so the service's batching
  // window (max_batch_delay = 2ms) is part of every latency number — the
  // realistic serving regime, not a batch-saturated one.
  const std::string body = "x\n1.5\n4\n9.25\n12\n18.5\n24\n31\n38.75\n";

  std::printf("{\n  \"bench\": \"bench_net_load\",\n  \"rps_sweep\": [\n");
  bool first = true;
  for (double frac : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    net::LoadGenConfig load;
    load.port = server.port();
    load.body = body;
    load.rps = max_rps * frac;
    load.duration = duration;
    load.num_threads = 8;
    load.max_retries = 2;
    load.seed = 42;
    const net::LoadGenReport report = net::run_load(load);
    std::printf("%s    %s", first ? "" : ",\n", report.to_json().c_str());
    std::fflush(stdout);
    first = false;
  }
  std::printf("\n  ]\n}\n");

  server.request_drain();
  server.wait();
  return 0;
}
