// Fig. 13 — component-level vs server-level spare cost at the 100% SLA,
// daily granularity, W1 and W6, per approach.
//
// Paper shape: with MF, component-level spares are cheaper than server-level
// (~-40% for the compute workload, ~-10% for storage); with SF the
// component-level cost can EXCEED server-level (the conservative
// sum-of-peaks effect), most visibly for W1.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/provisioning.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 13 - component-level vs server-level spares");
  const bench::Context& ctx = bench::context();
  const tco::CostModel costs;
  core::ProvisioningOptions opt;
  opt.granularity = core::Granularity::kDaily;

  std::printf("%-4s %-16s %10s %10s %10s\n", "WL", "regime", "LB", "MF", "SF");
  for (const auto wl : {simdc::WorkloadId::kW1, simdc::WorkloadId::kW6}) {
    const auto study = core::provision_components(*ctx.metrics, *ctx.env, wl,
                                                  /*sla=*/1.0, costs, opt);
    const char* name = wl == simdc::WorkloadId::kW1 ? "W1" : "W6";
    std::printf("%-4s %-16s %9.2f%% %9.2f%% %9.2f%%\n", name, "component-level",
                study.lb.component_level, study.mf.component_level,
                study.sf.component_level);
    std::printf("%-4s %-16s %9.2f%% %9.2f%% %9.2f%%\n", name, "server-level",
                study.lb.server_level, study.mf.server_level,
                study.sf.server_level);
    std::printf("%-4s MF component saving vs server-level: %.1f%%\n", name,
                100.0 * (study.mf.server_level - study.mf.component_level) /
                    study.mf.server_level);
  }
  std::printf("\n(cost = spare capex as %% of deployed-server capex; "
              "server:disk:DIMM = 100:2:10)\n");
  return 0;
}
