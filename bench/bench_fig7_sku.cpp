// Fig. 7 — failure rate per hardware SKU (raw single-factor view). Paper
// shape: marked differences in mean and sd across SKUs.
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 7 - failure rate by SKU");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by SKU",
                          marginals.by_sku());
  return 0;
}
