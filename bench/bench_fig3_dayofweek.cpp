// Fig. 3 — failure rate by day of week. Paper shape: weekdays above
// weekends (workload-demand coupling).
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 3 - failure rate by day of week");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by weekday",
                          marginals.by_weekday());
  return 0;
}
