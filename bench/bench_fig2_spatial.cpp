// Fig. 2 — inter-DC and intra-DC variation of the mean failure rate
// (total tickets per rack-day) per DC region. Paper shape: considerable
// variation across and within DCs; DC1 regions generally above DC2.
#include "common.hpp"
#include "rainshine/core/marginals.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 2 - failure rate by DC region");
  const bench::Context& ctx = bench::context();
  const core::Marginals marginals(*ctx.metrics, *ctx.env, ctx.day_stride);
  bench::print_normalized("mean total failure rate per rack-day, by region",
                          marginals.by_region());
  return 0;
}
