// Fig. 18 — the MF-discovered temperature x humidity interaction on disk
// failures, per DC.
//
// Paper shape: the classification tree splits DC1's disk failures at ~78F
// (+50% above it) and, within the hot branch, at RH ~25% (a further +25%
// below it); DC2's disk rate is insensitive to T/RH. The y-axis is
// normalized to the hot-and-dry subgroup's mean.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/environment_analysis.hpp"
#include "rainshine/util/strings.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 18 - temperature x humidity interaction (MF)");
  const bench::Context& ctx = bench::context();
  core::EnvironmentOptions opt;
  opt.day_stride = ctx.day_stride;
  const auto study = core::analyze_environment(*ctx.metrics, *ctx.env, opt);

  std::printf("discovered splits: DC1 temp %s F (planted 78), DC1 RH %s %% "
              "(planted 25), DC2 temp %s\n\n",
              study.dc1_temp_split
                  ? util::format_double(*study.dc1_temp_split, 1).c_str()
                  : "none",
              study.dc1_rh_split
                  ? util::format_double(*study.dc1_rh_split, 1).c_str()
                  : "none",
              study.dc2_temp_split
                  ? util::format_double(*study.dc2_temp_split, 1).c_str()
                  : "none");

  // Normalize to the DC1 hot-and-dry subgroup mean (the paper's reference).
  double reference = 0.0;
  for (const auto& cell : study.cells) {
    if (cell.dc == "DC1" && cell.condition.find("RH<=") != std::string::npos) {
      reference = cell.mean_rate;
    }
  }
  std::printf("%-4s %-26s %10s %10s %10s %10s\n", "DC", "condition", "norm",
              "mean", "sd", "n");
  for (const auto& cell : study.cells) {
    std::printf("%-4s %-26s %10.3f %10.4f %10.4f %10zu\n", cell.dc.c_str(),
                cell.condition.c_str(),
                reference > 0.0 ? cell.mean_rate / reference : 0.0,
                cell.mean_rate, cell.stddev, cell.n);
  }

  std::printf("\ndisk-failure tree factor ranking:");
  for (std::size_t i = 0; i < study.factors.size() && i < 5; ++i) {
    std::printf(" %s(%.2f)", study.factors[i].feature.c_str(),
                study.factors[i].importance);
  }
  std::printf("\n");
  return 0;
}
