// Ablation — cluster granularity vs provisioning efficiency: sweep the MF
// tree's complexity (cp) and watch the trade-off between the number of rack
// clusters and the over-provisioned capacity. Coarse trees behave like SF
// (one conservative pool); very fine trees approach the clairvoyant LB but
// yield operationally awkward micro-clusters.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/provisioning.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Ablation - MF cluster count vs efficiency");
  const bench::Context& ctx = bench::context();

  std::printf("workload W6, 100%% SLA, daily granularity\n");
  std::printf("%-10s %10s %12s %12s %12s\n", "tree cp", "clusters", "MF %",
              "SF %", "LB %");
  for (const double cp : {0.05, 0.02, 0.01, 0.005, 0.002, 0.0005, 0.0001}) {
    core::ProvisioningOptions opt;
    opt.slas = {1.0};
    opt.tree_config.cp = cp;
    opt.tree_config.max_depth = 10;
    const auto study = core::provision_servers(*ctx.metrics, *ctx.env,
                                               simdc::WorkloadId::kW6, opt);
    std::printf("%-10.4f %10zu %11.2f%% %11.2f%% %11.2f%%\n", cp,
                study.clusters.size(), study.mf.overprovision_pct[0],
                study.sf.overprovision_pct[0], study.lb.overprovision_pct[0]);
  }
  return 0;
}
