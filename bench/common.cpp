#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "rainshine/obs/export.hpp"
#include "rainshine/obs/metrics.hpp"
#include "rainshine/stats/descriptive.hpp"

namespace rainshine::bench {

namespace {

long env_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atol(v);
}

}  // namespace

std::size_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  std::size_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
      kib = static_cast<std::size_t>(value);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

void write_metrics_sidecar() {
  const char* path = std::getenv("RAINSHINE_METRICS");
  if (path == nullptr || *path == '\0') return;
  try {
    obs::write_file(path, obs::to_json(obs::registry().snapshot()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics sidecar %s failed: %s\n", path, e.what());
  }
}

const Context& context() {
  static const Context ctx = [] {
    Context c;
    c.spec = simdc::FleetSpec::paper_default();
    c.spec.num_days = static_cast<util::DayIndex>(env_or("RAINSHINE_DAYS", 913));
    c.spec.seed = static_cast<std::uint64_t>(env_or("RAINSHINE_SEED", 2017));
    c.day_stride = static_cast<std::int32_t>(env_or("RAINSHINE_STRIDE", 2));
    c.fleet = std::make_unique<simdc::Fleet>(c.spec);
    c.env = std::make_unique<simdc::EnvironmentModel>(*c.fleet, c.spec.seed);
    c.hazard = std::make_unique<simdc::HazardModel>(*c.fleet, *c.env);
    c.log = std::make_unique<simdc::TicketLog>(
        simulate(*c.fleet, *c.env, *c.hazard, {.seed = c.spec.seed}));
    c.metrics = std::make_unique<core::FailureMetrics>(*c.fleet, *c.log);
    return c;
  }();
  return ctx;
}

void print_context_banner(const std::string& experiment) {
  const Context& c = context();
  std::printf("### %s\n", experiment.c_str());
  std::printf("fleet: %zu racks / %zu servers, %d days, seed %llu, %zu tickets\n\n",
              c.fleet->num_racks(), c.fleet->num_servers(), c.spec.num_days,
              static_cast<unsigned long long>(c.spec.seed), c.log->size());
}

void print_normalized(const std::string& title,
                      std::span<const stats::BinnedRow> rows) {
  std::printf("%s\n", title.c_str());
  double peak = 0.0;
  for (const auto& row : rows) peak = std::max(peak, row.mean);
  std::printf("%-12s %10s %10s %10s %10s\n", "group", "norm", "mean", "sd", "n");
  for (const auto& row : rows) {
    std::printf("%-12s %10.3f %10.4f %10.4f %10zu\n", row.label.c_str(),
                peak > 0.0 ? row.mean / peak : 0.0, row.mean, row.stddev,
                row.count);
  }
  std::printf("\n");
}

}  // namespace rainshine::bench
