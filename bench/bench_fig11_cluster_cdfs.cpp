// Fig. 11 — per-cluster over-provisioning CDFs identified by MF, against the
// single pooled SF curve, at the daily granularity.
//
// Paper shape: W1 splits into ~10 clusters with requirements spanning
// ~2-50%; W6 into ~5 clusters spanning ~2-85%; the SF curve sits to the
// right of most cluster curves (one-size-fits-all conservatism).
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/provisioning.hpp"

using namespace rainshine;

namespace {

void print_study(const core::ServerProvisioningStudy& study) {
  std::printf("workload %s: %zu MF clusters (deciles of pooled mu fraction, %%)\n",
              std::string(simdc::to_string(study.workload)).c_str(),
              study.clusters.size());
  std::printf("%-9s %6s |", "curve", "racks");
  for (int d = 0; d <= 10; ++d) std::printf(" %5d%%", d * 10);
  std::printf(" | req@100%%\n");

  const auto print_deciles = [](const std::vector<double>& deciles) {
    for (const double v : deciles) std::printf(" %6.2f", 100.0 * v);
  };
  for (std::size_t c = 0; c < study.clusters.size(); ++c) {
    const core::Cluster& cluster = study.clusters[c];
    std::printf("cluster%-2zu %6zu |", c + 1, cluster.rack_ids.size());
    print_deciles(cluster.mu_fraction_deciles);
    std::printf(" | %6.2f%%  [%s]\n", 100.0 * cluster.requirement.back(),
                cluster.rule.c_str());
  }
  std::printf("%-9s %6s |", "SF", "all");
  print_deciles(study.sf_mu_deciles);
  std::printf(" |\n\n");
}

}  // namespace

int main() {
  bench::print_context_banner("Fig. 11 - MF cluster over-provisioning CDFs");
  const bench::Context& ctx = bench::context();
  core::ProvisioningOptions opt;
  opt.granularity = core::Granularity::kDaily;
  for (const auto wl : {simdc::WorkloadId::kW1, simdc::WorkloadId::kW6}) {
    print_study(core::provision_servers(*ctx.metrics, *ctx.env, wl, opt));
  }
  return 0;
}
