// Fig. 12 — same as Fig. 10 at HOURLY granularity.
//
// Paper shape: temporal multiplexing nearly halves the MF requirement
// (failures that do not overlap within the hour share a spare) while the SF
// requirement barely moves.
#include "common.hpp"
#include "provisioning_common.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Fig. 12 - server spare provisioning (hourly)");
  const bench::Context& ctx = bench::context();
  core::ProvisioningOptions opt;
  opt.granularity = core::Granularity::kHourly;
  for (const auto wl : {simdc::WorkloadId::kW1, simdc::WorkloadId::kW6}) {
    bench::print_provisioning(
        core::provision_servers(*ctx.metrics, *ctx.env, wl, opt));
  }
  return 0;
}
