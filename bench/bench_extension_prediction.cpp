// Extension — failure prediction (the paper's §VII future work): predict
// whether a rack opens a hardware RMA in the next week, from its factors
// and recent history, with the §V class-rebalancing preprocessing.
#include <cstdio>

#include "common.hpp"
#include "rainshine/core/prediction.hpp"

using namespace rainshine;

int main() {
  bench::print_context_banner("Extension - 7-day rack failure prediction");
  const bench::Context& ctx = bench::context();

  core::PredictionOptions opt;
  opt.day_stride = std::max(3, ctx.day_stride);
  const auto study = core::predict_rack_failures(*ctx.metrics, *ctx.env, opt);

  std::printf("train rows (rebalanced): %zu, test rows: %zu, test prevalence %.1f%%\n\n",
              study.train_rows, study.test_rows, 100.0 * study.test_positive_rate);
  const auto print = [](const char* name, const core::ConfusionMatrix& m) {
    std::printf("%-6s tp=%-6zu fp=%-6zu fn=%-6zu tn=%-6zu | acc %.3f  prec %.3f  "
                "recall %.3f  f1 %.3f\n",
                name, m.tp, m.fp, m.fn, m.tn, m.accuracy(), m.precision(),
                m.recall(), m.f1());
  };
  print("train", study.train);
  print("test", study.test);

  std::printf("\npredictive factors:");
  for (std::size_t i = 0; i < study.factors.size() && i < 6; ++i) {
    std::printf(" %s(%.2f)", study.factors[i].feature.c_str(),
                study.factors[i].importance);
  }
  std::printf("\n\nbaseline comparison: predicting 'fail' for everyone gives\n"
              "precision = prevalence (%.3f) and recall 1.0; the tree trades a\n"
              "little recall for much higher precision, which is what makes\n"
              "pro-active maintenance affordable.\n",
              study.test_positive_rate);
  return 0;
}
